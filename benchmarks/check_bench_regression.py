#!/usr/bin/env python
"""CI gate: fail when an engine hot path regresses vs a committed baseline.

Two modes over two benchmark sidecars:

* ``--mode train_step`` (default) — compares two
  ``BENCH_engine_microbench.json`` files on the CNN float32 train-step
  time (lower is better).
* ``--mode sampling`` — compares two ``BENCH_sampling_throughput.json``
  files on the streaming generation throughput (``rows_per_sec`` of the
  ``current``/``sample`` rows, higher is better) for every method
  present in both files.
* ``--mode serving`` — compares two ``BENCH_serving.json`` files on the
  worker-pool aggregate throughput at ``--workers`` (default 4)
  workers, normalized by the same run's 1-worker row (the MLP-GAN
  serving workload), i.e. the gated metric is the measured worker
  *scaling*.  Note the scaling is also core-count-bound: compare runs
  from machines with the same cpu budget (each json records ``cpus``).
* ``--mode streaming`` — compares two ``BENCH_streaming.json`` files on
  the ``fit_stream`` ingest throughput normalized by the same run's
  one-shot ``fit`` throughput (the gated metric is the stream/fit
  *ratio*, higher is better).  Also hard-fails either file whose
  streamed fit was not bit-identical to the one-shot fit.

Because CI hardware differs from the machine that produced the
committed baseline, the default comparison is **relative**: the gated
metric is normalized by the same run's reference row (the MLP train
step, or the ``gan-mlp`` sampling throughput), so a uniform machine
slowdown cancels out while a path-specific regression still trips the
gate.  ``--absolute`` compares raw numbers instead, for same-machine
trajectories.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json CURRENT.json \
        [--mode train_step|sampling] [--arch cnn] [--dtype float32] \
        [--relative-to mlp] [--max-regression 0.20] [--absolute] \
        [--json-out VERDICT.json]

Exit status 0 when within bounds, 1 on regression (or missing rows).
Besides the human-readable report, every run writes a machine-readable
verdict (mode, per-comparison ratios, threshold, status) next to the
``current`` file as ``<current>.verdict.json`` — or wherever
``--json-out`` points — so dashboards and CI annotations can consume
the gate without scraping stdout.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Reference row for machine-speed cancellation, per mode.
_DEFAULT_REFERENCE = {"train_step": "mlp", "sampling": "gan-mlp",
                      "serving": "1", "streaming": "fit"}

#: Per-comparison records accumulated by the checks for the verdict
#: JSON; reset by ``main`` on every invocation.
_COMPARISONS: list = []


def _note(metric: str, baseline: float, current: float, unit: str,
          change: float, ok: bool) -> None:
    _COMPARISONS.append({
        "metric": metric, "baseline": baseline, "current": current,
        "unit": unit, "change": change, "ok": ok,
    })


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# train_step mode (BENCH_engine_microbench.json)
# ----------------------------------------------------------------------
def _microbench_rows(payload: dict) -> dict:
    return {(row["arch"], row["dtype"]): row for row in payload["rows"]}


def _train_step_metric(rows: dict, arch: str, dtype: str,
                       relative_to: str | None) -> float:
    key = (arch, dtype)
    if key not in rows:
        raise KeyError(f"no ({arch}, {dtype}) row in benchmark json")
    value = float(rows[key]["train_step_ms"])
    if relative_to:
        ref_key = (relative_to, dtype)
        if ref_key not in rows:
            raise KeyError(f"no ({relative_to}, {dtype}) row for "
                           "normalization")
        value /= float(rows[ref_key]["train_step_ms"])
    return value


def _check_train_step(args) -> int:
    relative_to = None if args.absolute else args.relative_to
    base = _train_step_metric(_microbench_rows(_load(args.baseline)),
                              args.arch, args.dtype, relative_to)
    curr = _train_step_metric(_microbench_rows(_load(args.current)),
                              args.arch, args.dtype, relative_to)
    unit = "ms" if args.absolute else f"x {relative_to}"
    change = curr / base - 1.0
    ok = curr <= base * (1.0 + args.max_regression)
    _note(f"{args.arch}/{args.dtype} train_step", base, curr, unit,
          change, ok)
    print(f"{args.arch}/{args.dtype} train step: baseline {base:.4g} {unit}"
          f" -> current {curr:.4g} {unit} ({change:+.1%})")
    if not ok:
        print(f"FAIL: regression exceeds {args.max_regression:.0%} budget",
              file=sys.stderr)
        return 1
    print(f"OK: within the {args.max_regression:.0%} regression budget")
    return 0


# ----------------------------------------------------------------------
# sampling mode (BENCH_sampling_throughput.json)
# ----------------------------------------------------------------------
def _sampling_rows(payload: dict) -> dict:
    return {row["method"]: float(row["rows_per_sec"])
            for row in payload["rows"]
            if row.get("mode") == "current" and row.get("api") == "sample"}


def _check_sampling(args) -> int:
    reference = None if args.absolute else args.relative_to
    base_rows = _sampling_rows(_load(args.baseline))
    curr_rows = _sampling_rows(_load(args.current))
    methods = sorted(set(base_rows) & set(curr_rows))
    if not methods:
        raise KeyError("no common current/sample methods in the two jsons")
    if reference is not None and reference not in methods:
        raise KeyError(f"no {reference!r} row for normalization")
    failed = []
    for method in methods:
        base = base_rows[method]
        curr = curr_rows[method]
        unit = "rows/s"
        if reference is not None:
            if method == reference:
                continue  # the reference normalizes to 1.0 by definition
            base /= base_rows[reference]
            curr /= curr_rows[reference]
            unit = f"x {reference}"
        change = curr / base - 1.0
        # Throughput: lower-than-baseline beyond the budget fails.
        ok = curr >= base * (1.0 - args.max_regression)
        _note(f"{method} sampling throughput", base, curr, unit,
              change, ok)
        print(f"{method} sampling throughput: baseline {base:.4g} {unit}"
              f" -> current {curr:.4g} {unit} ({change:+.1%})")
        if not ok:
            failed.append(method)
    if failed:
        print(f"FAIL: sampling regression exceeds "
              f"{args.max_regression:.0%} budget for: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"OK: within the {args.max_regression:.0%} regression budget")
    return 0


# ----------------------------------------------------------------------
# serving mode (BENCH_serving.json)
# ----------------------------------------------------------------------
def _serving_rows(payload: dict) -> dict:
    return {int(row["workers"]): float(row["rows_per_sec"])
            for row in payload["rows"]
            if row.get("mode") == "throughput"}


def _serving_metric(rows: dict, workers: int,
                    relative_to) -> float:
    if workers not in rows:
        raise KeyError(f"no {workers}-worker throughput row in json")
    value = rows[workers]
    if relative_to is not None:
        reference = int(relative_to)
        if reference not in rows:
            raise KeyError(f"no {reference}-worker row for normalization")
        value /= rows[reference]
    return value


def _check_serving(args) -> int:
    relative_to = None if args.absolute else args.relative_to
    workers = args.workers
    base = _serving_metric(_serving_rows(_load(args.baseline)),
                           workers, relative_to)
    curr = _serving_metric(_serving_rows(_load(args.current)),
                           workers, relative_to)
    unit = "rows/s" if args.absolute else f"x {relative_to}-worker"
    change = curr / base - 1.0
    ok = curr >= base * (1.0 - args.max_regression)
    _note(f"serving throughput at {workers} workers", base, curr, unit,
          change, ok)
    print(f"serving throughput at {workers} workers: baseline "
          f"{base:.4g} {unit} -> current {curr:.4g} {unit} ({change:+.1%})")
    if not ok:
        print(f"FAIL: serving regression exceeds "
              f"{args.max_regression:.0%} budget", file=sys.stderr)
        return 1
    print(f"OK: within the {args.max_regression:.0%} regression budget")
    return 0


# ----------------------------------------------------------------------
# streaming mode (BENCH_streaming.json)
# ----------------------------------------------------------------------
def _streaming_rows(payload: dict) -> dict:
    rows = {row["path"]: row for row in payload["rows"]
            if row.get("mode") == "ingest" and "rows_per_sec" in row}
    for path, row in rows.items():
        if not row.get("bit_identical", False):
            raise KeyError(f"{path!r} ingest row is not bit-identical to "
                           "the one-shot fit: correctness, not speed")
    return {path: float(row["rows_per_sec"]) for path, row in rows.items()}


def _streaming_metric(rows: dict, relative_to) -> float:
    if "stream" not in rows:
        raise KeyError("no stream ingest row in json")
    value = rows["stream"]
    if relative_to is not None:
        if relative_to not in rows:
            raise KeyError(f"no {relative_to!r} ingest row for "
                           "normalization")
        value /= rows[relative_to]
    return value


def _check_streaming(args) -> int:
    relative_to = None if args.absolute else args.relative_to
    base = _streaming_metric(_streaming_rows(_load(args.baseline)),
                             relative_to)
    curr = _streaming_metric(_streaming_rows(_load(args.current)),
                             relative_to)
    unit = "rows/s" if args.absolute else f"x one-shot {relative_to}"
    change = curr / base - 1.0
    ok = curr >= base * (1.0 - args.max_regression)
    _note("fit_stream ingest throughput", base, curr, unit, change, ok)
    print(f"fit_stream ingest throughput: baseline {base:.4g} {unit}"
          f" -> current {curr:.4g} {unit} ({change:+.1%})")
    if not ok:
        print(f"FAIL: streaming regression exceeds "
              f"{args.max_regression:.0%} budget", file=sys.stderr)
        return 1
    print(f"OK: within the {args.max_regression:.0%} regression budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument("--mode",
                        choices=("train_step", "sampling", "serving",
                                 "streaming"),
                        default="train_step")
    parser.add_argument("--workers", type=int, default=4,
                        help="gated worker count for --mode serving")
    parser.add_argument("--arch", default="cnn")
    parser.add_argument("--dtype", default="float32")
    parser.add_argument("--relative-to", default=None,
                        help="normalize by this arch/method/worker-count "
                             "(machine-speed cancellation; default: "
                             "mlp for train_step, gan-mlp for sampling, "
                             "the 1-worker row for serving, the one-shot "
                             "fit row for streaming)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw numbers (same-machine runs)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--json-out", default=None,
                        help="where to write the machine-readable verdict "
                             "(default: <current>.verdict.json)")
    args = parser.parse_args(argv)
    if args.relative_to is None:
        args.relative_to = _DEFAULT_REFERENCE[args.mode]

    _COMPARISONS.clear()
    error = None
    try:
        if args.mode == "sampling":
            status = _check_sampling(args)
        elif args.mode == "serving":
            status = _check_serving(args)
        elif args.mode == "streaming":
            status = _check_streaming(args)
        else:
            status = _check_train_step(args)
    except (KeyError, FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"check_bench_regression: cannot compare: {exc}",
              file=sys.stderr)
        status, error = 1, f"{type(exc).__name__}: {exc}"
    _write_verdict(args, status, error)
    return status


def _write_verdict(args, status: int, error) -> None:
    verdict = {
        "mode": args.mode,
        "baseline": args.baseline,
        "current": args.current,
        "max_regression": args.max_regression,
        "relative_to": None if args.absolute else args.relative_to,
        "absolute": args.absolute,
        "status": ("error" if error is not None
                   else "ok" if status == 0 else "fail"),
        "error": error,
        "comparisons": list(_COMPARISONS),
    }
    path = args.json_out or f"{args.current}.verdict.json"
    try:
        with open(path, "w") as handle:
            json.dump(verdict, handle, indent=2)
            handle.write("\n")
    except OSError as exc:
        # The verdict sidecar is advisory; the exit status is the gate.
        print(f"check_bench_regression: cannot write verdict {path}: "
              f"{exc}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
