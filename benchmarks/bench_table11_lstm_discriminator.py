"""Table 11: LSTM-based discriminator vs MLP-based discriminator (Adult).

Paper shape to verify: swapping the MLP discriminator for a
sequence-to-one LSTM *increases* the F1 difference across
transformations — which is why the paper fixes D = MLP everywhere else.
"""

import pytest

from repro.core.design_space import DesignConfig

from _harness import context, diff_table, emit, gan_synthetic, run_once


def _grid(discriminator):
    configs = []
    for generator in ("mlp", "lstm"):
        for norm, norm_tag in (("simple", "sn"), ("gmm", "gn")):
            for enc, enc_tag in (("ordinal", "od"), ("onehot", "ht")):
                label = f"{generator.upper()} {norm_tag}/{enc_tag}"
                configs.append((label, DesignConfig(
                    generator=generator, discriminator=discriminator,
                    categorical_encoding=enc,
                    numerical_normalization=norm)))
    return configs


def test_table11(benchmark):
    def run():
        ctx = context("adult")
        texts = []
        for disc in ("lstm", "mlp"):
            rows = [(label, ctx.diff_row(gan_synthetic("adult", config)))
                    for label, config in _grid(disc)]
            texts.append(diff_table(
                "adult", rows,
                title=f"Table 11: D = {disc.upper()} (adult) — "
                      f"F1 difference"))
        return emit("table11", "\n\n".join(texts))

    run_once(benchmark, run)
