"""Benchmark-suite pytest options.

``--parity`` switches the whole benchmark run into the float64
bit-exact parity engine mode (the pre-fast-math default), overriding
the float32 sweep default.  It works by exporting
``REPRO_BENCH_DTYPE`` before ``_harness`` is imported, so every bench
module sees the requested dtype.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--parity", action="store_true", default=False,
        help="run benchmarks in the float64 bit-exact parity engine mode "
             "(default: float32 fast-math)")


def pytest_configure(config):
    if config.getoption("--parity"):
        os.environ["REPRO_BENCH_DTYPE"] = "float64"
