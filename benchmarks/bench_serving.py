"""Serving throughput and latency: the first end-to-end concurrency bench.

Measures the :mod:`repro.serve` stack on the MLP-GAN seed workload
(the same design point as ``bench_sampling_throughput``'s ``gan-mlp``
row):

* **throughput** — rows/s of ``WorkerPool.sample(N, seed)`` at 1/2/4
  workers, plus the plain single-process ``sample`` as reference.
  Every pooled result is verified **bit-identical** to the reference
  (the sharded-seed contract is an acceptance criterion, not a hope).
* **latency** — p50/p95 per-request wall clock under a concurrent load
  generator: ``REPRO_BENCH_SERVE_CONCURRENCY`` client threads each
  firing small unseeded requests through the micro-batcher backed by
  the largest pool, with coalescing stats recorded.

Worker scaling is hardware-bound: with fewer cores than workers the
extra processes only add IPC overhead, so ``BENCH_serving.json``
records ``cpus`` with every run — read the scaling numbers against it
(the committed baseline may come from a 1-core container; CI runners
with 4 vCPUs show the real fan-out).

Scale knobs: ``REPRO_BENCH_SERVE_ROWS`` (default 100000),
``REPRO_BENCH_RECORDS`` (training rows, default 1200),
``REPRO_BENCH_SERVE_WORKERS`` (default "1,2,4"),
``REPRO_BENCH_SERVE_REQUESTS`` / ``_CONCURRENCY`` / ``_REQ_ROWS``
(load generator, defaults 64 / 8 / 512).
"""

import os
import tempfile
import threading
import time

import numpy as np
import pytest

from _harness import emit, run_once
from bench_engine_microbench import _bench_table
from repro.check import pool_leak_scope
from repro.core.design_space import DesignConfig
from repro.gan.synthesizer import GANSynthesizer
from repro.report import format_table
from repro.serve import MicroBatcher, WorkerPool

N_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_ROWS", "100000"))
N_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "1200"))
WORKER_COUNTS = tuple(
    int(w) for w in
    os.environ.get("REPRO_BENCH_SERVE_WORKERS", "1,2,4").split(","))
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "64"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_SERVE_CONCURRENCY", "8"))
REQ_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_REQ_ROWS", "512"))

_FIT = dict(epochs=1, iterations_per_epoch=4)
_SEED = 3


def _save_seed_workload(path) -> GANSynthesizer:
    """Fit + persist the MLP-GAN seed workload; returns the live model."""
    table = _bench_table(n=N_RECORDS)
    synth = GANSynthesizer(config=DesignConfig(generator="mlp"),
                           seed=11, **_FIT)
    synth.fit(table)
    synth.save(path)
    return synth


def _assert_identical(a, b) -> bool:
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))
    return True


def _timed(fn, repeats: int = 2) -> float:
    """Best-of-``repeats`` wall clock (same policy as the other benches)."""
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = min(elapsed, time.perf_counter() - start)
    return elapsed


def _throughput_rows(model_dir, reference_table, batch) -> list:
    rows = []
    per_worker = {}
    for workers in WORKER_COUNTS:
        with WorkerPool(model_dir, workers=workers) as pool:
            pool.sample(max(N_ROWS // 20, batch), batch=batch, seed=_SEED)
            served = pool.sample(N_ROWS, batch=batch, seed=_SEED)
            identical = _assert_identical(served, reference_table)
            elapsed = _timed(lambda: pool.sample(N_ROWS, batch=batch,
                                                 seed=_SEED))
        per_worker[workers] = N_ROWS / elapsed
        rows.append({"mode": "throughput", "workers": workers,
                     "n_rows": N_ROWS, "seconds": round(elapsed, 4),
                     "rows_per_sec": round(N_ROWS / elapsed, 1),
                     "bit_identical": identical})
    base = per_worker.get(1) or per_worker[min(per_worker)]
    for row in rows:
        row["scaling_vs_1worker"] = round(
            per_worker[row["workers"]] / base, 3)
    return rows


def _latency_rows(model_dir, batch) -> list:
    """Concurrent small-request load through the micro-batcher."""
    workers = max(WORKER_COUNTS)
    latencies = []
    lock = threading.Lock()
    per_thread = max(N_REQUESTS // CONCURRENCY, 1)
    with WorkerPool(model_dir, workers=workers) as pool:
        batcher = MicroBatcher(
            lambda name, n, seed: pool.sample(n, batch=batch, seed=seed),
            max_delay=0.002, timeout=120.0)

        def client():
            for _ in range(per_thread):
                start = time.perf_counter()
                table = batcher.submit("gan-mlp", REQ_ROWS)
                elapsed = time.perf_counter() - start
                assert len(table) == REQ_ROWS
                with lock:
                    latencies.append(elapsed)

        threads = [threading.Thread(target=client)
                   for _ in range(CONCURRENCY)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        stats = dict(batcher.stats)
        batcher.close()
    total_rows = len(latencies) * REQ_ROWS
    return [{
        "mode": "latency", "workers": workers,
        "requests": len(latencies), "concurrency": CONCURRENCY,
        "rows_per_request": REQ_ROWS,
        "p50_ms": round(float(np.percentile(latencies, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(latencies, 95)) * 1e3, 2),
        "aggregate_rows_per_sec": round(total_rows / wall, 1),
        "coalesced_batches": stats["coalesced_batches"],
        "coalesced_requests": stats["coalesced_requests"],
        "solo_requests": stats["solo_requests"],
    }]


def test_serving_throughput(benchmark):
    def run():
        with tempfile.TemporaryDirectory() as tmp:
            model_dir = os.path.join(tmp, "gan-mlp")
            synth = _save_seed_workload(model_dir)
            batch = synth.default_sample_batch
            # Single-process reference: the number worker scaling is
            # measured against, and the bit-identity anchor.
            # The leak scope turns the benchmark into a lifetime check
            # too: every ArrayPool.take performed by the parent-side
            # sampling paths must be donated back by the time the
            # measurement loop finishes, or the bench fails.
            with pool_leak_scope():
                reference = synth.sample(N_ROWS, batch=batch, seed=_SEED)
                ref_elapsed = _timed(
                    lambda: synth.sample(N_ROWS, batch=batch, seed=_SEED))
                rows = [{"mode": "reference", "workers": 0,
                         "n_rows": N_ROWS,
                         "seconds": round(ref_elapsed, 4),
                         "rows_per_sec": round(N_ROWS / ref_elapsed, 1)}]
                rows.extend(_throughput_rows(model_dir, reference, batch))
                rows.extend(_latency_rows(model_dir, batch))
            rows.append({"mode": "meta", "cpus": os.cpu_count(),
                         "batch": batch, "method": "gan-mlp"})

        headers = ["mode", "workers", "rows/sec", "scaling", "p50 ms",
                   "p95 ms", "identical"]
        table_rows = [[r["mode"], r.get("workers", ""),
                       r.get("rows_per_sec",
                             r.get("aggregate_rows_per_sec", "")),
                       r.get("scaling_vs_1worker", ""),
                       r.get("p50_ms", ""), r.get("p95_ms", ""),
                       r.get("bit_identical", "")]
                      for r in rows if r["mode"] != "meta"]
        text = format_table(
            headers, table_rows,
            title=f"Serving benchmark — sample({N_ROWS}) via worker pool "
                  f"+ {CONCURRENCY}-client micro-batch load "
                  f"({os.cpu_count()} cpus)")
        return emit("serving", text, rows=rows)

    run_once(benchmark, run)


if __name__ == "__main__":  # manual runs without pytest-benchmark
    pytest.main([__file__, "-q"])
