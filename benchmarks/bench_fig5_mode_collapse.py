"""Figure 5: strategies against mode collapse — WTrain vs Simplified vs
VTrain F1 differences per classifier.

Paper shape to verify: Simplified (vanilla training with a simplified
discriminator) generally matches or beats VTrain, and WGAN training has
no advantage over vanilla training for relational data.
"""

import pytest

from repro.core.design_space import DesignConfig

from _harness import context, diff_table, emit, gan_synthetic, run_once

STRATEGIES = (
    ("WTrain", DesignConfig(training="wtrain", d_steps=2)),
    ("Simplified", DesignConfig(training="vtrain",
                                simplified_discriminator=True)),
    ("VTrain", DesignConfig(training="vtrain")),
)


@pytest.mark.parametrize("dataset", ["adult", "covtype", "sat", "census"])
def test_fig5(benchmark, dataset):
    def run():
        ctx = context(dataset)
        rows = [(label, ctx.diff_row(gan_synthetic(dataset, config)))
                for label, config in STRATEGIES]
        return emit(f"fig5_{dataset}", diff_table(
            dataset, rows,
            title=f"Figure 5: mode-collapse strategies ({dataset}) — "
                  f"F1 difference"))

    run_once(benchmark, run)
