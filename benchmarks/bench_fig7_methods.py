"""Figure 7: VAE vs PrivBayes (per epsilon) vs GAN on classification
utility.

Paper shape to verify: PB improves as epsilon grows; VAE is moderate;
GAN attains the smallest F1 differences overall.
"""

import pytest

from repro.core.design_space import DesignConfig

from _harness import (
    context, diff_rows_payload, diff_table, emit, gan_synthetic,
    pb_synthetic, run_once, vae_synthetic,
)

EPSILONS = (0.2, 0.4, 0.8, 1.6)


@pytest.mark.parametrize("dataset", ["adult", "covtype", "census", "sat"])
def test_fig7(benchmark, dataset):
    def run():
        ctx = context(dataset)
        rows = [("VAE", ctx.diff_row(vae_synthetic(dataset)))]
        for eps in EPSILONS:
            rows.append((f"PB-{eps}",
                         ctx.diff_row(pb_synthetic(dataset, eps))))
        rows.append(("GAN", ctx.diff_row(
            gan_synthetic(dataset, DesignConfig(training="ctrain")))))
        return emit(f"fig7_{dataset}", diff_table(
            dataset, rows,
            title=f"Figure 7: synthesis methods ({dataset}) — "
                  f"F1 difference"), rows=diff_rows_payload(rows))

    run_once(benchmark, run)
