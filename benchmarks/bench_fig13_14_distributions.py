"""Figures 13/14: value distributions of synthetic attributes.

Figure 13 (numerical, SDataNum): quantile summaries of the real vs
synthetic ``x`` attribute per model/normalization — the text rendition
of the paper's violin plots.  Figure 14 (categorical, SDataCat):
real vs synthetic category frequencies under one-hot vs ordinal
encoding.

Paper shape to verify: LSTM + GMM normalization tracks the multi-modal
numerical distribution best; one-hot beats ordinal on categorical
frequencies.
"""

import numpy as np
import pytest

from repro.core.design_space import DesignConfig

from _harness import context, emit, gan_synthetic, run_once
from repro.report import format_table

QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)


def _quantile_row(label, values):
    return [label] + [float(np.quantile(values, q)) for q in QUANTILES]


def test_fig13_numerical_distributions(benchmark):
    def run():
        kwargs = {"rho": 0.5}
        ctx = context("sdata_num", **kwargs)
        rows = [_quantile_row("REAL", ctx.train.column("x"))]
        models = (
            ("MLP (sn)", DesignConfig(generator="mlp",
                                      numerical_normalization="simple")),
            ("MLP (gn)", DesignConfig(generator="mlp",
                                      numerical_normalization="gmm")),
            ("LSTM (sn)", DesignConfig(generator="lstm",
                                       numerical_normalization="simple")),
            ("LSTM (gn)", DesignConfig(generator="lstm",
                                       numerical_normalization="gmm")),
        )
        for label, config in models:
            fake = gan_synthetic("sdata_num", config, **kwargs)
            rows.append(_quantile_row(label, fake.column("x")))
        headers = ["source"] + [f"q{int(q * 100)}" for q in QUANTILES]
        return emit("fig13", format_table(
            headers, rows,
            title="Figure 13: synthetic numerical attribute x (SDataNum) "
                  "— quantiles vs real"))

    run_once(benchmark, run)


def test_fig14_categorical_distributions(benchmark):
    def run():
        kwargs = {"p": 0.5}
        ctx = context("sdata_cat", **kwargs)
        domain = ctx.train.schema["a0"].domain_size
        real_freq = np.bincount(ctx.train.column("a0"),
                                minlength=domain) / len(ctx.train)
        rows = [["REAL"] + real_freq.tolist()]
        models = (
            ("MLP one-hot", DesignConfig(generator="mlp",
                                         categorical_encoding="onehot")),
            ("MLP ordinal", DesignConfig(generator="mlp",
                                         categorical_encoding="ordinal")),
            ("LSTM one-hot", DesignConfig(generator="lstm",
                                          categorical_encoding="onehot")),
            ("LSTM ordinal", DesignConfig(generator="lstm",
                                          categorical_encoding="ordinal")),
        )
        tvds = {}
        for label, config in models:
            fake = gan_synthetic("sdata_cat", config, **kwargs)
            freq = np.bincount(fake.column("a0"),
                               minlength=domain) / len(fake)
            rows.append([label] + freq.tolist())
            tvds[label] = 0.5 * float(np.abs(freq - real_freq).sum())
        headers = ["source"] + [f"v{v}" for v in range(domain)]
        dist_table = format_table(
            headers, rows,
            title="Figure 14: synthetic categorical attribute a0 "
                  "(SDataCat) — category frequencies")
        tvd_table = format_table(
            ["model", "TVD vs real"],
            [[k, v] for k, v in tvds.items()],
            title="Total variation distance to the real distribution")
        return emit("fig14", dist_table + "\n\n" + tvd_table)

    run_once(benchmark, run)
