"""Streaming synthesis benchmark: ingest, hot refresh, steady state.

Measures the :mod:`repro.stream` + hot-refresh stack on the PrivBayes
seed workload (the count-exact streaming family):

* **ingest** — rows/s of ``fit_stream`` over chunked input vs the
  one-shot ``fit`` of the same table.  The streamed fit is verified
  **bit-identical** to the one-shot fit (count-exactness is an
  acceptance criterion, not a hope); the gated metric is the
  stream/one-shot throughput *ratio*, which cancels machine speed.
* **refresh** — latency of ``SynthesisService.publish`` (fit on the
  grown data + write version + atomic ``ACTIVE`` swap + pool boot)
  across three successive refreshes, with a request served between
  each pair to exercise the drain path.
* **steady state** — marginal fidelity of the served model against the
  accumulated real data after each refresh, so drift across refreshes
  shows up as a trajectory rather than a single number.

``BENCH_streaming.json`` feeds ``check_bench_regression.py --mode
streaming``, which gates on the ingest ratio.

Scale knobs: ``REPRO_BENCH_STREAM_ROWS`` (default 20000),
``REPRO_BENCH_STREAM_CHUNK`` (default 4096),
``REPRO_BENCH_STREAM_REFRESHES`` (default 3).
"""

import os
import tempfile
import time

import numpy as np
import pytest

from _harness import emit, run_once
from bench_engine_microbench import _bench_table
from repro.api import make_synthesizer
from repro.core.statistics import fidelity_summary
from repro.report import format_table
from repro.serve import SynthesisService

N_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "20000"))
CHUNK_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_CHUNK", "4096"))
N_REFRESHES = int(os.environ.get("REPRO_BENCH_STREAM_REFRESHES", "3"))

_SEED = 3


def _timed(fn, repeats: int = 2) -> float:
    """Best-of-``repeats`` wall clock (same policy as the other benches)."""
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = min(elapsed, time.perf_counter() - start)
    return elapsed


def _assert_identical(a, b) -> bool:
    for name, probs in a.conditionals.items():
        np.testing.assert_array_equal(b.conditionals[name], probs)
    return True


def _ingest_rows(table) -> list:
    one_shot = make_synthesizer("privbayes", epsilon=None, seed=_SEED)
    fit_elapsed = _timed(lambda: one_shot.fit(table))

    streamed = make_synthesizer("privbayes", epsilon=None, seed=_SEED)
    stream_elapsed = _timed(
        lambda: streamed.fit_stream(table, chunk_rows=CHUNK_ROWS))
    identical = _assert_identical(one_shot, streamed)

    rows = []
    for path, elapsed in (("fit", fit_elapsed), ("stream", stream_elapsed)):
        rows.append({"mode": "ingest", "path": path, "n_rows": N_ROWS,
                     "chunk_rows": CHUNK_ROWS if path == "stream" else None,
                     "seconds": round(elapsed, 4),
                     "rows_per_sec": round(N_ROWS / elapsed, 1),
                     "bit_identical": identical})
    rows.append({"mode": "ingest", "path": "ratio",
                 "stream_vs_fit": round(fit_elapsed / stream_elapsed, 3)})
    return rows


def _refresh_rows(table) -> list:
    """Publish N successive refreshes on growing data; time each swap."""
    rows = []
    per_refresh = max(len(table) // (N_REFRESHES + 1), 1)
    with tempfile.TemporaryDirectory() as tmp:
        with SynthesisService(os.path.join(tmp, "models"),
                              workers=0) as service:
            for refresh in range(N_REFRESHES + 1):
                seen = table.take(
                    np.arange(min((refresh + 1) * per_refresh, len(table))))
                synth = make_synthesizer("privbayes", epsilon=None,
                                         seed=_SEED)
                synth.fit_stream(seen, chunk_rows=CHUNK_ROWS)
                start = time.perf_counter()
                version = service.publish("stream-pb", synth)
                publish_seconds = time.perf_counter() - start
                served, _ = service.sample("stream-pb", 2000, seed=7)
                fidelity = fidelity_summary(seen, served)
                rows.append({
                    "mode": "refresh", "refresh": refresh,
                    "version": version, "rows_seen": len(seen),
                    "publish_ms": round(publish_seconds * 1e3, 2),
                    "mean_marginal_tv": round(
                        fidelity["mean_marginal_tv"], 4),
                    "max_marginal_tv": round(
                        fidelity["max_marginal_tv"], 4),
                })
            assert service.healthz()["draining"] == 0
    return rows


def test_streaming(benchmark):
    def run():
        table = _bench_table(n=N_ROWS)
        rows = _ingest_rows(table)
        rows.extend(_refresh_rows(table))
        rows.append({"mode": "meta", "cpus": os.cpu_count(),
                     "method": "privbayes", "chunk_rows": CHUNK_ROWS})

        headers = ["mode", "path/refresh", "rows", "rows/sec",
                   "publish ms", "mean tv", "identical"]
        table_rows = [[r["mode"],
                       r.get("path", r.get("refresh", "")),
                       r.get("n_rows", r.get("rows_seen", "")),
                       r.get("rows_per_sec", ""),
                       r.get("publish_ms", ""),
                       r.get("mean_marginal_tv", ""),
                       r.get("bit_identical", r.get("stream_vs_fit", ""))]
                      for r in rows if r["mode"] != "meta"]
        text = format_table(
            headers, table_rows,
            title=f"Streaming benchmark — fit_stream({N_ROWS} rows, "
                  f"chunks of {CHUNK_ROWS}) + {N_REFRESHES} hot refreshes "
                  f"({os.cpu_count()} cpus)")
        return emit("streaming", text, rows=rows)

    run_once(benchmark, run)


if __name__ == "__main__":  # manual runs without pytest-benchmark
    pytest.main([__file__, "-q"])
