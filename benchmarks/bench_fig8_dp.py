"""Figure 8: DPGAN vs PrivBayes under differential privacy (DT10).

For each target epsilon in the paper's grid, the RDP accountant sets
DPGAN's noise multiplier (same subsampling rate / step count as the
training run); PB uses epsilon directly.

Paper shape to verify: DPGAN cannot beat PB at essentially every privacy
level — noising the critic's gradients cripples adversarial training.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import classification_utility
from repro.privacy import sigma_for_epsilon

from _harness import context, emit, gan_synthetic, pb_synthetic, run_once
from repro.report import format_table

EPSILONS = (0.1, 0.2, 0.4, 0.8, 1.6)


def _dpgan_diff(dataset: str, epsilon: float) -> float:
    ctx = context(dataset)
    steps = ctx.epochs * ctx.iterations_per_epoch
    config = DesignConfig(training="dptrain")
    q = min(1.0, config.batch_size / max(len(ctx.train), 1))
    sigma = sigma_for_epsilon(epsilon, q=q, steps=steps, low=0.3, high=500.0)
    config = config.with_(dp_noise_multiplier=float(sigma))
    fake = gan_synthetic(dataset, config)
    return classification_utility(fake, ctx.train, ctx.test, "DT10").diff


@pytest.mark.parametrize("dataset", ["adult", "covtype"])
def test_fig8(benchmark, dataset):
    def run():
        ctx = context(dataset)
        rows = []
        for eps in EPSILONS:
            pb_diff = classification_utility(
                pb_synthetic(dataset, eps), ctx.train, ctx.test,
                "DT10").diff
            rows.append([eps, pb_diff, _dpgan_diff(dataset, eps)])
        return emit(f"fig8_{dataset}", format_table(
            ["epsilon", "PB", "DPGAN"], rows,
            title=f"Figure 8: DP synthesis ({dataset}) — F1 difference "
                  f"(DT10) per privacy level"))

    run_once(benchmark, run)
