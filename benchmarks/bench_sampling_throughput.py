"""Sampling throughput: rows/sec for ``sample`` and ``sample_iter``.

Pins the Phase III (generation) hot path across method families — the
MLP and CNN GAN design points, the VAE baseline and PrivBayes — and
compares the current engine against a **pre-PR-equivalent** loop: the
float64 engine with 256-row chunks, per-chunk eval/train mode flips and
the per-attribute (non-vectorized) inverse transform, which is exactly
what ``sample(n)`` executed before the CNN-fast-path/streaming PR.

``BENCH_sampling_throughput.json`` rows carry, per method:

* ``current`` rows/sec for ``sample(N)`` and for driving ``sample_iter``
  (engine dtype = the harness default, float32 fast-math unless
  ``REPRO_BENCH_DTYPE``/``--parity`` overrides);
* ``prepr_float64`` rows/sec for the legacy-equivalent loop;
* ``speedup_vs_prepr`` — the end-to-end acceptance number.

Scale knobs: ``REPRO_BENCH_SAMPLE_ROWS`` (default 100000) and
``REPRO_BENCH_RECORDS`` (training-table rows, default 1200).
"""

import os
import time

import numpy as np
import pytest

from _harness import emit, run_once
from bench_engine_microbench import _bench_table
from repro.core.design_space import DesignConfig
from repro.datasets.schema import Table
from repro.gan.synthesizer import GANSynthesizer
from repro.nn import Tensor, default_dtype, get_default_dtype, no_grad
from repro.report import format_table
from repro.vae.synthesizer import VAESynthesizer
from repro.privbayes.synthesizer import PrivBayesSynthesizer

N_ROWS = int(os.environ.get("REPRO_BENCH_SAMPLE_ROWS", "100000"))
N_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "1200"))
_FIT = dict(epochs=1, iterations_per_epoch=4)

METHODS = ("gan-mlp", "gan-cnn", "vae", "privbayes")


def _make_synthesizer(method: str, seed: int = 11):
    if method == "gan-mlp":
        return GANSynthesizer(config=DesignConfig(generator="mlp"),
                              seed=seed, **_FIT)
    if method == "gan-cnn":
        config = DesignConfig(generator="cnn",
                              categorical_encoding="ordinal",
                              numerical_normalization="simple")
        return GANSynthesizer(config=config, seed=seed, **_FIT)
    if method == "vae":
        return VAESynthesizer(seed=seed, **_FIT)
    if method == "privbayes":
        return PrivBayesSynthesizer(epsilon=None, seed=seed)
    raise ValueError(method)


def _legacy_sample(synth, n: int, seed: int = 3):
    """The pre-PR generation loop, reproduced op for op.

    The family's pre-PR default chunk size (GAN 256, VAE 512), an
    eval/train module-tree walk per chunk, and the per-attribute
    reference inverse — the path ``sample(n)`` took before the
    streaming/vectorized-inverse overhaul.  Only meaningful for the
    transformer-based families (GAN, VAE).
    """
    rng = np.random.default_rng(seed)
    chunks = []
    remaining = n
    is_vae = isinstance(synth, VAESynthesizer)
    model = synth.model if is_vae else synth.generator
    z_dim = synth.latent_dim if is_vae else synth.config.z_dim
    batch = 512 if is_vae else 256
    while remaining > 0:
        m = min(batch, remaining)
        model.eval()
        try:
            z = Tensor(rng.standard_normal((m, z_dim)))
            with no_grad():
                raw = (model.decode(z) if is_vae else model(z, None)).data
        finally:
            model.train()
        chunks.append(synth.transformer.inverse(raw, vectorized=False))
        remaining -= m
    # One per-column concatenate at the end, exactly like the pre-PR
    # Synthesizer.sample (not a quadratic chunk-by-chunk merge).
    schema = chunks[0].schema
    columns = {name: np.concatenate([c.columns[name] for c in chunks])
               for name in schema.names}
    return Table(schema, columns)


def _timed_rows_per_sec(fn, n: int, repeats: int = 2) -> dict:
    """Best-of-``repeats`` wall clock (same policy as the microbench)."""
    fn(max(n // 20, 1))  # warm-up (compiles caches, touches pools)
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(n)
        elapsed = min(elapsed, time.perf_counter() - start)
    return {"seconds": round(elapsed, 4),
            "rows_per_sec": round(n / elapsed, 1)}


def _bench_method(method: str, table) -> list:
    rows = []
    dtype_name = np.dtype(get_default_dtype()).name

    # Current engine (harness default dtype): one-shot + streaming.
    synth = _make_synthesizer(method)
    synth.fit(table)
    one_shot = _timed_rows_per_sec(
        lambda n: synth.sample(n, seed=3), N_ROWS)
    rows.append({"method": method, "mode": "current", "api": "sample",
                 "engine_dtype": dtype_name, "n_rows": N_ROWS, **one_shot})

    def drain(n):
        for _ in synth.sample_iter(n, seed=3):
            pass

    streaming = _timed_rows_per_sec(drain, N_ROWS)
    rows.append({"method": method, "mode": "current", "api": "sample_iter",
                 "engine_dtype": dtype_name, "n_rows": N_ROWS, **streaming})

    # Pre-PR-equivalent loop needs a float64-built model (the pre-PR
    # benches ran the float64 default engine).
    if method != "privbayes":
        with default_dtype("float64"):
            legacy_synth = _make_synthesizer(method)
            legacy_synth.fit(table)
            legacy = _timed_rows_per_sec(
                lambda n: _legacy_sample(legacy_synth, n), N_ROWS)
        rows.append({"method": method, "mode": "prepr_float64",
                     "api": "sample", "engine_dtype": "float64",
                     "n_rows": N_ROWS, **legacy})
        rows[0]["speedup_vs_prepr"] = round(
            one_shot["rows_per_sec"] / legacy["rows_per_sec"], 3)
    return rows


def test_sampling_throughput(benchmark):
    def run():
        table = _bench_table(n=N_RECORDS)
        rows = []
        for method in METHODS:
            rows.extend(_bench_method(method, table))
        speedups = [r["speedup_vs_prepr"] for r in rows
                    if "speedup_vs_prepr" in r]
        geomean = round(float(np.prod(speedups)) ** (1.0 / len(speedups)), 3)
        rows.append({"method": "ALL", "mode": "summary", "api": "sample",
                     "engine_dtype": "", "n_rows": N_ROWS,
                     "speedup_geomean_vs_prepr": geomean})
        headers = ["method", "mode", "api", "dtype", "rows/sec", "speedup"]
        table_rows = [[r["method"], r["mode"], r["api"], r["engine_dtype"],
                       r.get("rows_per_sec", ""),
                       r.get("speedup_vs_prepr",
                             r.get("speedup_geomean_vs_prepr", ""))]
                      for r in rows]
        text = format_table(
            headers, table_rows,
            title=f"Sampling throughput — sample({N_ROWS}) end-to-end "
                  f"(summary row: geomean speedup vs pre-PR)")
        return emit("sampling_throughput", text, rows=rows)

    run_once(benchmark, run)


if __name__ == "__main__":  # manual runs without pytest-benchmark
    pytest.main([__file__, "-q"])
