"""Relational (multi-table) synthesis: fidelity + generation throughput.

Runs :class:`repro.relational.DatabaseSynthesizer` on the simulated
customers/orders pair (``datasets.sdata_relational``) for several
per-table method families and records, per family:

* **referential integrity** — dangling FK count of the synthetic
  database (zero by construction; recorded as an invariant check);
* **cardinality fidelity** — TV distance between the real and
  synthetic children-per-parent histograms, plus the mean fan-out;
* **parent-child correlation preservation** — mean absolute difference
  of the FK-join correlations (Hudovernik et al.'s axis);
* **marginal fidelity** — mean per-attribute TV distance per table;
* **rows/sec** — end-to-end generation throughput of ``sample`` over
  all tables of the database (the multi-table Phase III number).

``BENCH_relational.json`` carries the rows for cross-PR trajectories.

Scale knobs: ``REPRO_BENCH_CUSTOMERS`` (default 400, parents of the
simulated pair), ``REPRO_BENCH_EPOCHS`` / ``REPRO_BENCH_ITERS`` (neural
training budget), ``REPRO_BENCH_DB_SCALE`` (sampled database size as a
multiple of the training one, default 5 so the throughput number is
measured on a meaningfully sized generation pass).
"""

import os
import time

import pytest

from _harness import emit, run_once
from repro.datasets import sdata_relational
from repro.relational import DatabaseSynthesizer, database_fidelity_report
from repro.report import format_table

N_CUSTOMERS = int(os.environ.get("REPRO_BENCH_CUSTOMERS", "400"))
EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "5"))
ITERS = int(os.environ.get("REPRO_BENCH_ITERS", "25"))
SCALE = float(os.environ.get("REPRO_BENCH_DB_SCALE", "5"))

#: Per-table method families compared (the acceptance bar is >= 2).
METHODS = ("gan", "vae", "privbayes")


def _run() -> str:
    database = sdata_relational(n_customers=N_CUSTOMERS, seed=0)
    fk = database.foreign_keys[0]
    rows = []
    for method in METHODS:
        synth = DatabaseSynthesizer(
            method=method,
            method_kwargs=dict(epochs=EPOCHS, iterations_per_epoch=ITERS),
            seed=0)
        fit_start = time.perf_counter()
        synth.fit(database)
        fit_seconds = time.perf_counter() - fit_start

        sample_start = time.perf_counter()
        synthetic = synth.sample(scale=SCALE, seed=1)
        sample_seconds = time.perf_counter() - sample_start
        n_rows = sum(len(synthetic[name]) for name in synthetic.table_names)

        report = database_fidelity_report(database, synthetic)
        edge = report["foreign_keys"][0]
        rows.append({
            "method": method,
            "n_rows": n_rows,
            "fit_seconds": round(fit_seconds, 4),
            "sample_seconds": round(sample_seconds, 4),
            "rows_per_sec": round(n_rows / max(sample_seconds, 1e-9), 1),
            "dangling_fks": report["dangling_references"][fk.key],
            "cardinality_tv": round(
                edge["cardinality"]["count_tv_distance"], 4),
            "real_fanout_mean": round(edge["cardinality"]["real_mean"], 3),
            "synth_fanout_mean": round(
                edge["cardinality"]["synthetic_mean"], 3),
            "pc_correlation_diff": round(
                edge["correlation"]["mean_abs_difference"], 4),
            "marginal_tv_customers": round(
                report["tables"]["customers"]["marginal_tv_mean"], 4),
            "marginal_tv_orders": round(
                report["tables"]["orders"]["marginal_tv_mean"], 4),
        })

    headers = ["method", "rows/s", "dangling", "card.TV", "pc-corr diff",
               "TV cust", "TV orders"]
    table_rows = [[r["method"], r["rows_per_sec"], r["dangling_fks"],
                   r["cardinality_tv"], r["pc_correlation_diff"],
                   r["marginal_tv_customers"], r["marginal_tv_orders"]]
                  for r in rows]
    text = format_table(
        headers, table_rows,
        title=(f"Relational synthesis (customers/orders, "
               f"{N_CUSTOMERS} parents, scale {SCALE:g})"))
    return emit("relational", text, rows=rows)


@pytest.mark.benchmark(group="relational")
def test_bench_relational(benchmark):
    run_once(benchmark, _run)
