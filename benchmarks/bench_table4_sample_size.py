"""Table 4: effect of the synthetic/original size ratio (DT10).

The fitted generator is sampled at 50%/100%/150%/200% of |T_train| and
the DT10 F1 difference is reported per ratio.

Paper shape to verify: more synthetic rows help slightly but the gains
flatten — extra samples from the same generator add no new information.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import classification_utility

from _harness import context, emit, gan_run, run_once
from repro.report import format_table

RATIOS = (0.5, 1.0, 1.5, 2.0)

DATASETS = (
    ("adult", {}),
    ("covtype", {}),
    ("sdata_num", {"rho": 0.5}),
    ("sdata_cat", {"p": 0.5}),
)


def test_table4(benchmark):
    def run():
        rows = []
        for dataset, kwargs in DATASETS:
            ctx = context(dataset, **kwargs)
            synth_run = gan_run(dataset, DesignConfig(), **kwargs)
            row = [dataset]
            for ratio in RATIOS:
                fake = synth_run.synthesizer.sample(
                    max(1, int(len(ctx.train) * ratio)))
                diff = classification_utility(fake, ctx.train, ctx.test,
                                              "DT10").diff
                row.append(diff)
            rows.append(row)
        headers = ["dataset"] + [f"{int(r * 100)}%" for r in RATIOS]
        return emit("table4", format_table(
            headers, rows,
            title="Table 4: size ratio |T'|/|T_train| vs F1 difference "
                  "(DT10)"))

    run_once(benchmark, run)
