"""Table 6: attribute correlation (simulated data) — F1 diff + time.

SDataNum with correlation 0.5/0.9 and SDataCat with conditional-diagonal
0.5/0.9, synthesized by CNN, MLP and LSTM generators; reports the DT30
F1 difference and the wall-clock synthesis time.

Paper shape to verify: LSTM best on utility at every correlation level;
CNN fastest but worst; LSTM slowest (per-attribute sequential
generation).
"""

import time

import pytest

from repro.api import synthesize
from repro.core.design_space import DesignConfig
from repro.core.evaluation import classification_utility

from _harness import cnn_config, context, emit, run_once
from repro.report import format_table

CASES = (
    ("SDataNum-0.5", "sdata_num", {"rho": 0.5}),
    ("SDataNum-0.9", "sdata_num", {"rho": 0.9}),
    ("SDataCat-0.5", "sdata_cat", {"p": 0.5}),
    ("SDataCat-0.9", "sdata_cat", {"p": 0.9}),
)

MODELS = (
    ("CNN", cnn_config()),
    ("MLP", DesignConfig(generator="mlp")),
    ("LSTM", DesignConfig(generator="lstm")),
)


def test_table6(benchmark):
    def run():
        headers = (["dataset"]
                   + [f"{m} diff" for m, _ in MODELS]
                   + [f"{m} time(s)" for m, _ in MODELS])
        rows = []
        payload = []
        for label, dataset, kwargs in CASES:
            ctx = context(dataset, **kwargs)
            diffs, times = [], []
            for model, config in MODELS:
                start = time.perf_counter()
                result = synthesize(
                    ctx.train, method="gan", config=config, valid=ctx.valid,
                    epochs=ctx.epochs,
                    iterations_per_epoch=ctx.iterations_per_epoch, seed=0)
                times.append(time.perf_counter() - start)
                diffs.append(classification_utility(
                    result.table, ctx.train, ctx.test, "DT30").diff)
                payload.append({"dataset": label, "model": model,
                                "diff": diffs[-1], "seconds": times[-1]})
            rows.append([label] + diffs + [round(t, 1) for t in times])
        return emit("table6", format_table(
            headers, rows,
            title="Table 6: attribute correlation — F1 diff (DT30) and "
                  "synthesis time"), rows=payload)

    run_once(benchmark, run)
