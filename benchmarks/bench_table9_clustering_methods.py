"""Table 9: synthesis methods -> clustering utility DiffCST.

Paper shape to verify: GAN preserves clustering structure 1-2 orders of
magnitude better than VAE and PB.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import clustering_utility

from _harness import (
    context, emit, gan_synthetic, pb_synthetic, run_once, vae_synthetic,
)
from repro.report import format_table

DATASETS = ("htru2", "covtype", "adult", "digits", "anuran", "census", "sat")
EPSILONS = (0.2, 0.4, 0.8, 1.6)


def test_table9(benchmark):
    def run():
        headers = (["dataset", "VAE"]
                   + [f"PB-{e}" for e in EPSILONS] + ["GAN"])
        rows = []
        for dataset in DATASETS:
            ctx = context(dataset)
            row = [dataset,
                   clustering_utility(vae_synthetic(dataset), ctx.train)]
            for eps in EPSILONS:
                row.append(clustering_utility(pb_synthetic(dataset, eps),
                                              ctx.train))
            row.append(clustering_utility(
                gan_synthetic(dataset, DesignConfig(training="ctrain")),
                ctx.train))
            rows.append(row)
        return emit("table9", format_table(
            headers, rows, precision=4,
            title="Table 9: clustering utility DiffCST by method "
                  "(lower is better)"))

    run_once(benchmark, run)
