#!/usr/bin/env python
"""CI smoke: the /metrics endpoint serves the core serving series.

Boots a tiny model store, starts the HTTP front end, drives one seeded
pooled request and one unseeded coalesced request through it, then
scrapes ``GET /metrics`` and asserts the exposition parses and carries
the serve, batcher, and pool-supervision series.  Exit 0 on success,
1 with a diagnostic on any missing series — cheap enough to run on
every push next to the benchmark gates.

Usage::

    PYTHONPATH=src python benchmarks/smoke_metrics.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import urllib.request

#: Every scrape of a served stack must carry these series.
REQUIRED_SERIES = (
    "repro_serve_requests_total",
    "repro_serve_request_seconds_bucket",
    "repro_serve_request_seconds_count",
    "repro_serve_rows_total",
    "repro_serve_circuit_state",
    "repro_batcher_requests_total",
    "repro_batcher_queue_depth",
    "repro_batcher_coalesce_size_bucket",
    "repro_pool_dispatch_total",
    "repro_pool_chunks_total",
    "repro_pool_inflight",
)


def main() -> int:
    import repro
    from repro import datasets
    from repro.obs.export import parse_prometheus
    from repro.serve import SynthesisServer

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp) / "models"
        root.mkdir()
        table = datasets.load("sdata_num", n_records=400, seed=0)
        synth = repro.make_synthesizer("gan", epochs=1,
                                       iterations_per_epoch=3, seed=0)
        synth.fit(table)
        synth.save(root / "smoke-gan")

        with SynthesisServer(root, workers=2).start() as server:
            def post(body: dict) -> dict:
                request = urllib.request.Request(
                    f"{server.url}/models/smoke-gan/sample",
                    data=json.dumps(body).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=120) as resp:
                    return json.loads(resp.read())

            post({"n": 600, "seed": 7, "batch": 200})  # pooled, sharded
            post({"n": 64})                            # coalesced
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=30) as resp:
                content_type = resp.headers.get("Content-Type", "")
                text = resp.read().decode("utf-8")

    if "version=0.0.4" not in content_type:
        print(f"FAIL: unexpected /metrics content type {content_type!r}",
              file=sys.stderr)
        return 1
    series = parse_prometheus(text)
    missing = [name for name in REQUIRED_SERIES if name not in series]
    if missing:
        print("FAIL: /metrics is missing series: " + ", ".join(missing),
              file=sys.stderr)
        print(text, file=sys.stderr)
        return 1
    rows = sum(value for _labels, value in
               series["repro_serve_rows_total"])
    if rows < 600 + 64:
        print(f"FAIL: repro_serve_rows_total={rows}, expected >= 664",
              file=sys.stderr)
        return 1
    print(f"OK: /metrics serves {len(series)} series "
          f"({rows:.0f} rows counted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
