"""Figure 4: F1 per epoch across random hyper-parameter settings.

For LSTM- and MLP-based generators on Adult and CovType, several
sampled hyper-parameter settings are trained and the validation F1 of a
classifier trained on each epoch snapshot is tracked.

Paper shape to verify: the MLP generator's curves stay in a moderate
band for every setting; several LSTM settings crater (mode collapse —
F1 drops to ~0 after early epochs).
"""

import numpy as np
import pytest

from repro.api import synthesize
from repro.core.design_space import DesignConfig
from repro.core.model_selection import hyperparameter_candidates

from _harness import context, emit, run_once
from repro.report import format_series

N_SETTINGS = 5


def _curves(dataset: str, generator: str):
    ctx = context(dataset)
    base = DesignConfig(generator=generator)
    series = {}
    for i, config in enumerate(hyperparameter_candidates(
            base, n=N_SETTINGS, seed=7)):
        result = synthesize(ctx.train, method="gan", config=config,
                            valid=ctx.valid, epochs=ctx.epochs,
                            iterations_per_epoch=ctx.iterations_per_epoch,
                            seed=i)
        series[f"param-{i + 1}"] = [round(v, 3)
                                    for v in result.selection_curve]
    return series


@pytest.mark.parametrize("dataset", ["adult", "covtype"])
@pytest.mark.parametrize("generator", ["lstm", "mlp"])
def test_fig4(benchmark, dataset, generator):
    def run():
        series = _curves(dataset, generator)
        name = f"fig4_{generator}_{dataset}"
        return emit(name, format_series(
            series, x_label="epoch",
            title=f"Figure 4: {generator.upper()}-based G ({dataset}) — "
                  f"validation F1 per epoch"),
            rows=[{"setting": k, "f1_per_epoch": v}
                  for k, v in series.items()])

    run_once(benchmark, run)
