"""Figure 15: synthesis methods on the simulated datasets.

Paper shape to verify: GAN remains the best method on both simulated
numerical and categorical data; PB approaches it as epsilon grows.
"""

import pytest

from repro.core.design_space import DesignConfig

from _harness import (
    context, diff_table, emit, gan_synthetic, pb_synthetic, run_once,
    vae_synthetic,
)

EPSILONS = (0.2, 0.4, 0.8, 1.6)

CASES = (
    ("sdata_num", {"rho": 0.5}),
    ("sdata_cat", {"p": 0.5}),
)


@pytest.mark.parametrize("dataset,kwargs", CASES)
def test_fig15(benchmark, dataset, kwargs):
    def run():
        ctx = context(dataset, **kwargs)
        rows = [("VAE", ctx.diff_row(vae_synthetic(dataset, **kwargs)))]
        for eps in EPSILONS:
            rows.append((f"PB-{eps}", ctx.diff_row(
                pb_synthetic(dataset, eps, **kwargs))))
        rows.append(("GAN", ctx.diff_row(gan_synthetic(
            dataset, DesignConfig(training="ctrain"), **kwargs))))
        return emit(f"fig15_{dataset}", diff_table(
            dataset, rows,
            title=f"Figure 15: methods on simulated data ({dataset}) — "
                  f"F1 difference"))

    run_once(benchmark, run)
