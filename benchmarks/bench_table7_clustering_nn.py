"""Table 7: generator networks -> clustering utility DiffCST.

K-Means (K = #labels) on real vs synthetic tables; the difference of the
NMI scores measures how well the synthesizer preserves the clustering
structure.

Paper shape to verify: LSTM gn/ht generally attains the smallest
DiffCST; CNN the largest.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import clustering_utility

from _harness import cnn_config, context, emit, gan_synthetic, run_once
from repro.report import format_table

DATASETS = ("htru2", "adult", "covtype", "digits", "anuran", "census", "sat")

CONFIGS = (
    ("MLP sn/ht", DesignConfig(generator="mlp",
                               numerical_normalization="simple")),
    ("MLP gn/ht", DesignConfig(generator="mlp",
                               numerical_normalization="gmm")),
    ("LSTM sn/ht", DesignConfig(generator="lstm",
                                numerical_normalization="simple")),
    ("LSTM gn/ht", DesignConfig(generator="lstm",
                                numerical_normalization="gmm")),
)

#: Datasets whose Table 7 row includes the CNN column in the paper.
CNN_DATASETS = {"htru2", "adult", "census"}


def test_table7(benchmark):
    def run():
        headers = ["dataset", "CNN"] + [label for label, _ in CONFIGS]
        rows = []
        for dataset in DATASETS:
            ctx = context(dataset)
            row = [dataset]
            if dataset in CNN_DATASETS:
                fake = gan_synthetic(dataset, cnn_config())
                row.append(clustering_utility(fake, ctx.train))
            else:
                row.append("-")
            for _, config in CONFIGS:
                fake = gan_synthetic(dataset, config)
                row.append(clustering_utility(fake, ctx.train))
            rows.append(row)
        return emit("table7", format_table(
            headers, rows, precision=4,
            title="Table 7: clustering utility DiffCST by generator "
                  "network (lower is better)"))

    run_once(benchmark, run)
