"""Shared infrastructure for the benchmark harnesses.

Each ``bench_*.py`` module regenerates one table or figure of the paper:
it synthesizes data with the relevant design points / methods, computes
the paper's metric, prints a paper-shaped table (also written under
``benchmarks/results/``), and registers the end-to-end run with
pytest-benchmark (exactly one timed round — these are experiments, not
micro-benchmarks).

Synthesis results are memoized per (dataset, config, seed) for the whole
pytest session, so benchmarks sharing a design point do not retrain.

Scale knobs (environment variables):

* ``REPRO_BENCH_RECORDS``  records per dataset (default 1200)
* ``REPRO_BENCH_EPOCHS``   GAN epochs (default 5)
* ``REPRO_BENCH_ITERS``    iterations per epoch (default 25)
* ``REPRO_BENCH_DTYPE``    engine dtype for the run.  **float32 (the
  fast-math training mode) is the default for the sweep benchmarks** —
  paper-shape conclusions were re-validated under it (see ROADMAP) and
  it roughly halves sweep wall-clock.  Pass ``--parity`` to pytest (or
  set ``REPRO_BENCH_DTYPE=float64``) to run the bit-exact float64
  parity mode instead, e.g. when validating a trajectory against the
  historical engine.

Every ``BENCH_<name>.json`` sidecar records the engine dtype active when
it was written, so perf trajectories across PRs can distinguish parity
runs from fast-math runs.  The engine microbenchmark
(``bench_engine_microbench.py``) times forward/backward/optimizer-step
per architecture in *both* dtypes regardless of the ambient default and
is the regression gate for engine changes:

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_microbench.py
    python benchmarks/check_bench_regression.py \
        <committed BENCH_engine_microbench.json> \
        benchmarks/results/BENCH_engine_microbench.json

The resulting ``BENCH_engine_microbench.json`` rows carry per-arch,
per-dtype wall-clock in milliseconds; ``check_bench_regression.py``
fails (exit 1) when the CNN train step regresses beyond the allowed
margin, which CI runs on every push.  Sampling throughput has its own
harness (``bench_sampling_throughput.py`` ->
``BENCH_sampling_throughput.json``) comparing the streaming generation
path against the pre-PR float64 loop.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import get_default_dtype, set_default_dtype
from repro.core.design_space import DesignConfig
from repro.core.experiment import ExperimentContext
from repro.core.pipeline import SynthesisRun
from repro.datasets.schema import Table
from repro.report import format_series, format_table, print_report

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: ``REPRO_BENCH_JSON=0`` disables the machine-readable BENCH_*.json files.
JSON_ENABLED = os.environ.get("REPRO_BENCH_JSON", "1") not in ("0", "false")

#: The paper's evaluator classifiers (table columns).
CLASSIFIER_COLUMNS = ("DT10", "DT30", "RF10", "RF20", "AB", "LR")

#: ``REPRO_BENCH_DTYPE`` switches the engine dtype for the whole run;
#: the sweep default is the float32 fast-math mode (float64 = the
#: ``--parity`` escape hatch, see module docstring).
_BENCH_DTYPE = os.environ.get("REPRO_BENCH_DTYPE", "float32")
set_default_dtype(_BENCH_DTYPE)

_CONTEXTS: Dict[tuple, ExperimentContext] = {}
_GAN_RUNS: Dict[tuple, SynthesisRun] = {}
_TABLES: Dict[tuple, Table] = {}


def context(dataset: str, seed: int = 0, **dataset_kwargs
            ) -> ExperimentContext:
    """Memoized experiment context (dataset + split + budget)."""
    key = (dataset, seed, tuple(sorted(dataset_kwargs.items())))
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(dataset, seed=seed,
                                           dataset_kwargs=dataset_kwargs)
    return _CONTEXTS[key]


def gan_run(dataset: str, config: Optional[DesignConfig] = None,
            seed: int = 0, **dataset_kwargs) -> SynthesisRun:
    """Memoized GAN synthesis run (training + snapshot selection)."""
    config = config if config is not None else DesignConfig()
    key = ("gan", dataset, config.describe(), config.lr_g, config.hidden_dim,
           config.batch_size, config.z_dim, config.dp_noise_multiplier,
           seed, tuple(sorted(dataset_kwargs.items())))
    if key not in _GAN_RUNS:
        ctx = context(dataset, seed=seed, **dataset_kwargs)
        _GAN_RUNS[key] = ctx.gan(config)
    return _GAN_RUNS[key]


def gan_synthetic(dataset: str, config: Optional[DesignConfig] = None,
                  seed: int = 0, **dataset_kwargs) -> Table:
    return gan_run(dataset, config, seed=seed, **dataset_kwargs).synthetic


def vae_synthetic(dataset: str, seed: int = 0, **dataset_kwargs) -> Table:
    key = ("vae", dataset, seed, tuple(sorted(dataset_kwargs.items())))
    if key not in _TABLES:
        ctx = context(dataset, seed=seed, **dataset_kwargs)
        _TABLES[key] = ctx.vae()
    return _TABLES[key]


def pb_synthetic(dataset: str, epsilon: Optional[float], seed: int = 0,
                 **dataset_kwargs) -> Table:
    key = ("pb", dataset, epsilon, seed, tuple(sorted(dataset_kwargs.items())))
    if key not in _TABLES:
        ctx = context(dataset, seed=seed, **dataset_kwargs)
        _TABLES[key] = ctx.privbayes(epsilon)
    return _TABLES[key]


# ----------------------------------------------------------------------
# Design-point grids used by several benchmarks
# ----------------------------------------------------------------------
def transform_configs(generator: str, mixed: bool
                      ) -> List[Tuple[str, DesignConfig]]:
    """Table 3's transformation grid for one generator.

    Mixed-type datasets get the full sn/od, sn/ht, gn/od, gn/ht grid;
    numerical-only datasets only vary the normalization (sn, gn), as in
    the paper's Table 3(d).
    """
    grid = []
    if mixed:
        for norm, norm_tag in (("simple", "sn"), ("gmm", "gn")):
            for enc, enc_tag in (("ordinal", "od"), ("onehot", "ht")):
                grid.append((f"{norm_tag}/{enc_tag}", DesignConfig(
                    generator=generator, categorical_encoding=enc,
                    numerical_normalization=norm)))
    else:
        for norm, norm_tag in (("simple", "sn"), ("gmm", "gn")):
            grid.append((norm_tag, DesignConfig(
                generator=generator, categorical_encoding="onehot",
                numerical_normalization=norm)))
    return grid


def cnn_config() -> DesignConfig:
    return DesignConfig(generator="cnn", categorical_encoding="ordinal",
                        numerical_normalization="simple")


def is_mixed(dataset: str) -> bool:
    ctx = context(dataset)
    return bool(ctx.train.schema.categorical_names(include_label=False))


def is_binary_label(dataset: str) -> bool:
    ctx = context(dataset)
    label = ctx.train.schema.label
    return label is not None and label.domain_size == 2


# ----------------------------------------------------------------------
# Output handling
# ----------------------------------------------------------------------
#: Reports emitted during the current ``run_once`` call, so the timed
#: wall-clock can be attached to each one afterwards.
_PENDING_REPORTS: List[Tuple[str, Optional[list]]] = []


def emit(name: str, text: str, rows: Optional[list] = None) -> str:
    """Print a framed report and persist it under benchmarks/results/.

    ``rows`` is an optional JSON-friendly structure (e.g. a list of
    metric dicts) included verbatim in the machine-readable
    ``BENCH_<name>.json`` written alongside the text report, so future
    PRs can track a perf/metric trajectory.
    """
    print_report(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _PENDING_REPORTS.append((name, rows))
    if JSON_ENABLED:
        _write_json(name, rows, elapsed_seconds=None)
    return text


def _peak_rss_kb() -> float:
    """Lifetime peak resident set of this process and its children, KB.

    ``ru_maxrss`` is kilobytes on Linux; the OS never resets it, so
    this is a high-water mark at write time, not a per-benchmark delta
    — still enough to catch a benchmark that suddenly doubles memory.
    """
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return float(max(own, children))


def _cpu_seconds() -> float:
    """Cumulative CPU time (user+system, children included)."""
    t = os.times()
    return t.user + t.system + t.children_user + t.children_system


def _write_json(name: str, rows: Optional[list],
                elapsed_seconds: Optional[float],
                cpu_seconds: Optional[float] = None) -> None:
    payload = {
        "name": name,
        "elapsed_seconds": elapsed_seconds,
        "cpu_seconds": cpu_seconds,
        "peak_rss_kb": _peak_rss_kb(),
        "engine_dtype": np.dtype(get_default_dtype()).name,
        "rows": rows,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, default=float) + "\n")


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark as a single timed round.

    Reports emitted during ``fn`` get their JSON sidecars re-written
    once timing is available, carrying the measured wall-clock, the
    CPU time burned across the round (workers included), and the
    process's peak RSS.
    """
    _PENDING_REPORTS.clear()
    cpu_start = _cpu_seconds()
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    cpu = _cpu_seconds() - cpu_start
    if JSON_ENABLED:
        for name, rows in _PENDING_REPORTS:
            _write_json(name, rows, elapsed_seconds=elapsed,
                        cpu_seconds=cpu)
    _PENDING_REPORTS.clear()
    return result


def diff_table(dataset: str, rows: Sequence[Tuple[str, Dict[str, float]]],
               title: str) -> str:
    """Format per-classifier F1-difference rows like the paper's tables."""
    headers = ["config"] + list(CLASSIFIER_COLUMNS)
    table_rows = []
    for label, diffs in rows:
        table_rows.append([label] + [diffs.get(c, float("nan"))
                                     for c in CLASSIFIER_COLUMNS])
    return format_table(headers, table_rows, title=title)


def diff_rows_payload(rows: Sequence[Tuple[str, Dict[str, float]]]) -> list:
    """JSON-friendly form of ``diff_table`` rows (for ``emit(rows=...)``)."""
    return [{"config": label,
             **{c: float(diffs[c]) for c in CLASSIFIER_COLUMNS if c in diffs}}
            for label, diffs in rows]
