"""Figures 16-18: training robustness on more datasets + simplified D.

Figure 16: hyper-parameter robustness curves on SAT and Census (the
appendix's complement to Figure 4).  Figures 17/18: the same LSTM
settings trained with a normal vs a *simplified* discriminator — the
paper's §5.2 remedy — on Adult and SAT.

Paper shape to verify: the simplified discriminator rescues most of the
collapsing LSTM settings (fewer curves fall to ~0 F1).
"""

import numpy as np
import pytest

from repro.api import synthesize
from repro.core.design_space import DesignConfig
from repro.core.model_selection import hyperparameter_candidates

from _harness import context, emit, run_once
from repro.report import format_series

N_SETTINGS = 4


def _curves(dataset: str, generator: str, simplified: bool):
    ctx = context(dataset)
    base = DesignConfig(generator=generator,
                        simplified_discriminator=simplified)
    series = {}
    for i, config in enumerate(hyperparameter_candidates(
            base, n=N_SETTINGS, seed=7)):
        result = synthesize(ctx.train, method="gan", config=config,
                            valid=ctx.valid, epochs=ctx.epochs,
                            iterations_per_epoch=ctx.iterations_per_epoch,
                            seed=i)
        series[f"param-{i + 1}"] = [round(v, 3)
                                    for v in result.selection_curve]
    return series


@pytest.mark.parametrize("dataset", ["sat", "census"])
@pytest.mark.parametrize("generator", ["lstm", "mlp"])
def test_fig16_hyperparams(benchmark, dataset, generator):
    def run():
        series = _curves(dataset, generator, simplified=False)
        name = f"fig16_{generator}_{dataset}"
        return emit(name, format_series(
            series, x_label="epoch",
            title=f"Figure 16: {generator.upper()}-based G ({dataset}) — "
                  f"validation F1 per epoch"))

    run_once(benchmark, run)


@pytest.mark.parametrize("dataset", ["adult", "sat"])
def test_fig17_18_simplified_d(benchmark, dataset):
    def run():
        normal = _curves(dataset, "lstm", simplified=False)
        simple = _curves(dataset, "lstm", simplified=True)

        def floor_rate(series):
            """Fraction of settings whose final F1 collapsed to ~0."""
            finals = [curve[-1] for curve in series.values()]
            return float(np.mean([f < 0.05 for f in finals]))

        text = (format_series(
            normal, x_label="epoch",
            title=f"Figures 17/18: normal D (LSTM G, {dataset})")
            + "\n\n"
            + format_series(
                simple, x_label="epoch",
                title=f"Figures 17/18: simplified D (LSTM G, {dataset})")
            + "\n\n"
            + f"collapsed settings — normal D: {floor_rate(normal):.2f}, "
              f"simplified D: {floor_rate(simple):.2f}")
        return emit(f"fig17_18_{dataset}", text)

    run_once(benchmark, run)
