"""Figure 6: conditional GAN on skew real datasets.

Compares VGAN (unconditional), CGAN-V (conditional, random sampling) and
CGAN-C (conditional, label-aware sampling — CTrain) on the paper's skew
datasets.

Paper shape to verify: CGAN-V gains little (sometimes loses) over VGAN;
CGAN-C improves utility on skew label distributions.
"""

import pytest

from repro.core.design_space import DesignConfig

from _harness import context, diff_table, emit, gan_synthetic, run_once

VARIANTS = (
    ("GAN", DesignConfig(training="vtrain")),
    ("CGAN-V", DesignConfig(training="vtrain", conditional=True)),
    ("CGAN-C", DesignConfig(training="ctrain")),
)


@pytest.mark.parametrize("dataset", ["adult", "covtype", "census", "anuran"])
def test_fig6(benchmark, dataset):
    def run():
        ctx = context(dataset)
        rows = [(label, ctx.diff_row(gan_synthetic(dataset, config)))
                for label, config in VARIANTS]
        return emit(f"fig6_{dataset}", diff_table(
            dataset, rows,
            title=f"Figure 6: conditional GAN ({dataset}, skew labels) — "
                  f"F1 difference"))

    run_once(benchmark, run)
