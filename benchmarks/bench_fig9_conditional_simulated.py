"""Figure 9: conditional GAN on simulated data, balanced vs skew labels.

Paper shape to verify: with balanced labels, conditional GAN does not
help (sometimes hurts); with skew labels, CGAN-C (CTrain) improves
utility.
"""

import pytest

from repro.core.design_space import DesignConfig

from _harness import context, diff_table, emit, gan_synthetic, run_once

VARIANTS = (
    ("GAN", DesignConfig(training="vtrain")),
    ("CGAN(VTrain)", DesignConfig(training="vtrain", conditional=True)),
    ("CGAN(CTrain)", DesignConfig(training="ctrain")),
)

CASES = (
    ("sdata_num_balance", "sdata_num", {"rho": 0.5, "skew": False}),
    ("sdata_num_skew", "sdata_num", {"rho": 0.5, "skew": True}),
    ("sdata_cat_balance", "sdata_cat", {"p": 0.5, "skew": False}),
    ("sdata_cat_skew", "sdata_cat", {"p": 0.5, "skew": True}),
)


@pytest.mark.parametrize("name,dataset,kwargs", CASES)
def test_fig9(benchmark, name, dataset, kwargs):
    def run():
        ctx = context(dataset, **kwargs)
        rows = [(label, ctx.diff_row(
            gan_synthetic(dataset, config, **kwargs)))
            for label, config in VARIANTS]
        return emit(f"fig9_{name}", diff_table(
            dataset, rows,
            title=f"Figure 9: conditional GAN ({name}) — F1 difference"))

    run_once(benchmark, run)
