"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these isolate two mechanisms the paper credits but
never ablates in isolation:

1. the KL-divergence warm-up in VTrain's generator loss (Eq. 2):
   trained with and without the term;
2. the WGAN critic-iteration count ``d_steps`` (Algorithm 2's T_d);
3. statistical fidelity (marginal TV / correlation drift) by generator,
   a quantitative companion to Figures 13/14.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.statistics import fidelity_summary

from _harness import context, diff_table, emit, gan_synthetic, run_once
from repro.report import format_table


def test_ablation_kl_warmup(benchmark):
    def run():
        ctx = context("adult")
        rows = []
        for label, weight in (("with KL warm-up", 1.0),
                              ("without KL warm-up", 0.0)):
            fake = gan_synthetic("adult", DesignConfig(kl_weight=weight))
            rows.append((label, ctx.diff_row(fake)))
        return emit("ablation_kl", diff_table(
            "adult", rows,
            title="Ablation: VTrain KL warm-up term (adult) — "
                  "F1 difference"))

    run_once(benchmark, run)


def test_ablation_wgan_critic_steps(benchmark):
    def run():
        ctx = context("adult")
        rows = []
        for d_steps in (1, 3, 5):
            config = DesignConfig(training="wtrain", d_steps=d_steps)
            fake = gan_synthetic("adult", config)
            rows.append((f"d_steps={d_steps}", ctx.diff_row(fake)))
        return emit("ablation_dsteps", diff_table(
            "adult", rows,
            title="Ablation: WGAN critic iterations (adult) — "
                  "F1 difference"))

    run_once(benchmark, run)


def test_ablation_statistical_fidelity(benchmark):
    def run():
        ctx = context("adult")
        configs = (
            ("MLP gn/ht", DesignConfig(generator="mlp")),
            ("LSTM gn/ht", DesignConfig(generator="lstm")),
            ("MLP sn/od", DesignConfig(
                generator="mlp", categorical_encoding="ordinal",
                numerical_normalization="simple")),
        )
        headers = ["config", "mean marg TV", "max marg TV", "corr diff",
                   "assoc diff"]
        rows = []
        for label, config in configs:
            fake = gan_synthetic("adult", config)
            summary = fidelity_summary(ctx.train, fake)
            rows.append([label, summary["mean_marginal_tv"],
                         summary["max_marginal_tv"],
                         summary["correlation_diff"],
                         summary["association_diff"]])
        return emit("ablation_fidelity", format_table(
            headers, rows,
            title="Ablation: statistical fidelity by design point "
                  "(adult, lower is better)"))

    run_once(benchmark, run)
