"""Optimizers: convergence on a quadratic, clipping, gradient noise."""

import numpy as np
import pytest

from repro.nn import (
    Adam, Parameter, RMSProp, SGD, Tensor, add_gradient_noise,
    clip_gradients, clip_parameters, global_gradient_norm,
)


def quadratic_loss(param):
    target = np.array([1.0, -2.0, 3.0])
    diff = param - Tensor(target)
    return (diff * diff).sum()


@pytest.mark.parametrize("optimizer_cls,kwargs", [
    (SGD, {"lr": 0.1}),
    (SGD, {"lr": 0.05, "momentum": 0.9}),
    (Adam, {"lr": 0.2}),
    (RMSProp, {"lr": 0.1}),
])
def test_converges_on_quadratic(optimizer_cls, kwargs):
    param = Parameter(np.zeros(3))
    opt = optimizer_cls([param], **kwargs)
    for _ in range(200):
        opt.zero_grad()
        quadratic_loss(param).backward()
        opt.step()
    np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-2)


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_step_skips_missing_grads():
    param = Parameter(np.ones(2))
    opt = Adam([param])
    opt.step()  # no grad -> no movement, no crash
    np.testing.assert_allclose(param.data, 1.0)


def test_clip_parameters_projects_into_box(rng):
    param = Parameter(rng.normal(0, 5, size=(4, 4)))
    clip_parameters([param], 0.01)
    assert np.abs(param.data).max() <= 0.01


def test_clip_parameters_invalid():
    with pytest.raises(ValueError):
        clip_parameters([Parameter(np.ones(2))], 0.0)


def test_global_gradient_norm():
    p1 = Parameter(np.zeros(2))
    p2 = Parameter(np.zeros(2))
    p1.grad = np.array([3.0, 0.0])
    p2.grad = np.array([0.0, 4.0])
    assert global_gradient_norm([p1, p2]) == pytest.approx(5.0)


def test_clip_gradients_scales_to_bound():
    p = Parameter(np.zeros(2))
    p.grad = np.array([3.0, 4.0])
    pre = clip_gradients([p], 1.0)
    assert pre == pytest.approx(5.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0)


def test_clip_gradients_no_op_below_bound():
    p = Parameter(np.zeros(2))
    p.grad = np.array([0.3, 0.4])
    clip_gradients([p], 1.0)
    np.testing.assert_allclose(p.grad, [0.3, 0.4])


def test_add_gradient_noise_changes_grads(rng):
    p = Parameter(np.zeros(100))
    p.grad = np.zeros(100)
    add_gradient_noise([p], std=1.0, rng=rng)
    assert p.grad.std() == pytest.approx(1.0, rel=0.3)


def test_adam_bias_correction_first_step():
    """After one step, Adam moves by ~lr regardless of gradient scale."""
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=0.1)
    p.grad = np.array([1e-4])
    opt.step()
    assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-2)


class TestFlatStateOptimizers:
    """The flat-buffer fast path must match the per-parameter update."""

    def _reference_adam(self, params, grads_seq, lr=0.05,
                        betas=(0.9, 0.999), eps=1e-8):
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        out = [p.copy() for p in params]
        t = 0
        for grads in grads_seq:
            t += 1
            bias1 = 1.0 - betas[0] ** t
            bias2 = 1.0 - betas[1] ** t
            for i, g in enumerate(grads):
                if g is None:
                    continue
                m[i] = betas[0] * m[i] + (1 - betas[0]) * g
                v[i] = betas[1] * v[i] + (1 - betas[1]) * g * g
                out[i] -= 0.05 * (m[i] / bias1) / (np.sqrt(v[i] / bias2) + eps)
        return out

    def test_adam_matches_reference_with_missing_grads(self, rng):
        shapes = [(3, 2), (4,), (2, 2)]
        initial = [rng.normal(size=s) for s in shapes]
        params = [Parameter(p.copy()) for p in initial]
        opt = Adam(params, lr=0.05)
        grads_seq = []
        for step in range(5):
            grads = [rng.normal(size=s) for s in shapes]
            if step == 2:
                grads[1] = None  # exercises the per-segment fallback
            grads_seq.append(grads)
        for grads in grads_seq:
            for param, grad in zip(params, grads):
                param.grad = grad
            opt.step()
            opt.zero_grad()
        expected = self._reference_adam(initial, grads_seq)
        for param, exp in zip(params, expected):
            np.testing.assert_allclose(param.data, exp, rtol=1e-10)

    def test_rmsprop_step_allocates_into_views(self, rng):
        params = [Parameter(rng.normal(size=(3, 3))),
                  Parameter(rng.normal(size=(5,)))]
        opt = RMSProp(params, lr=0.01)
        for param in params:
            param.grad = np.ones_like(param.data)
        before = [p.data.copy() for p in params]
        opt.step()
        for param, prev in zip(params, before):
            assert not np.allclose(param.data, prev)

    def test_float32_params_keep_dtype_through_step(self):
        from repro import nn
        with nn.default_dtype("float32"):
            param = Parameter(np.ones(4))
            opt = Adam([param], lr=0.1)
            param.grad = np.ones(4, dtype=np.float32)
            opt.step()
        assert param.data.dtype == np.float32
