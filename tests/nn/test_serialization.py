"""Parameter persistence round trips."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, ReLU, Tensor
from repro.nn.serialization import (
    load_module, load_state, save_module, save_state, state_manifest,
)


@pytest.fixture
def model(rng):
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))


def test_state_round_trip(tmp_path, model):
    path = tmp_path / "weights"
    save_state(path, model.state_dict())
    loaded = load_state(path)
    for name, value in model.state_dict().items():
        np.testing.assert_array_equal(loaded[name], value)


def test_npz_suffix_added(tmp_path, model):
    save_state(tmp_path / "weights", model.state_dict())
    assert (tmp_path / "weights.npz").exists()


def test_module_round_trip_restores_behaviour(tmp_path, model, rng):
    x = rng.normal(size=(5, 4))
    expected = model(Tensor(x)).data.copy()
    save_module(tmp_path / "m", model)

    fresh = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    assert not np.allclose(fresh(Tensor(x)).data, expected)
    load_module(tmp_path / "m", fresh)
    np.testing.assert_allclose(fresh(Tensor(x)).data, expected)


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state(tmp_path / "missing.npz")


class TestLazyLoading:
    """``mmap_mode="r"``: views into the archive instead of copies."""

    def test_mmap_values_equal_eager_values(self, tmp_path, model):
        path = tmp_path / "weights"
        save_state(path, model.state_dict())
        eager = load_state(path)
        lazy = load_state(path, mmap_mode="r")
        assert set(lazy) == set(eager)
        for name in eager:
            np.testing.assert_array_equal(lazy[name], eager[name])
            assert isinstance(lazy[name], np.memmap)

    def test_mmap_handles_dtypes_orders_and_empties(self, tmp_path):
        state = {
            "f32": np.arange(12, dtype=np.float32).reshape(3, 4),
            "fortran": np.asfortranarray(
                np.arange(6, dtype=np.float64).reshape(2, 3)),
            "ints": np.arange(5, dtype=np.int64),
            "empty": np.empty((0, 7)),
        }
        save_state(tmp_path / "mixed", state)
        lazy = load_state(tmp_path / "mixed", mmap_mode="r")
        for name, value in state.items():
            np.testing.assert_array_equal(lazy[name], value)
            assert lazy[name].dtype == value.dtype
            assert lazy[name].shape == value.shape

    def test_unknown_mmap_mode_rejected(self, tmp_path, model):
        save_state(tmp_path / "w", model.state_dict())
        with pytest.raises(ValueError):
            load_state(tmp_path / "w", mmap_mode="r+")

    def test_manifest_reports_shapes_without_loading(self, tmp_path,
                                                     model):
        path = tmp_path / "weights"
        state = model.state_dict()
        save_state(path, state)
        manifest = state_manifest(path)
        assert set(manifest) == set(state)
        for name, value in state.items():
            assert manifest[name]["shape"] == value.shape
            assert manifest[name]["dtype"] == str(value.dtype)
            assert manifest[name]["nbytes"] == value.nbytes


def test_synthesizer_generator_round_trip(tmp_path):
    """A trained generator snapshot survives persistence."""
    from repro.core.design_space import DesignConfig
    from repro.gan import GANSynthesizer
    from tests.conftest import make_mixed_table

    table = make_mixed_table(n=150, seed=0)
    synth = GANSynthesizer(DesignConfig(), epochs=1, iterations_per_epoch=3,
                           seed=0).fit(table)
    save_module(tmp_path / "gen", synth.generator)

    state = load_state(tmp_path / "gen")
    assert set(state) == set(synth.generator.state_dict())
