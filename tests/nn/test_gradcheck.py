"""Finite-difference gradient checks over every Tensor op, both dtypes.

The engine runs in a configurable dtype: ``float64`` is the bit-exact
parity mode, ``float32`` the fast-math training mode whose fused/batched
kernels re-associate sums.  Each case builds a scalar loss from the op
under test and compares the tape gradient against central finite
differences computed in float64 parity mode — so the float32 cases also
validate that the fast-math rewrites stay numerically faithful.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, concat, fused_linear, stack, where
from repro.nn.losses import categorical_kl, categorical_kl_sum
from repro.nn.rnn import addmm, lstm_gates, lstm_step

from tests.conftest import numeric_gradient

TOLS = {
    "float64": dict(atol=1e-7, rtol=1e-5),
    "float32": dict(atol=5e-3, rtol=5e-2),
}


@pytest.fixture(params=["float64", "float32"])
def engine_dtype(request):
    with nn.default_dtype(request.param):
        yield request.param


def check(build, *arrays, dtype):
    """Autograd grads (engine dtype) vs float64 finite differences."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    with nn.default_dtype("float64"):
        for arr, tensor in zip(arrays, tensors):
            numeric = numeric_gradient(
                lambda: float(build(*[Tensor(a) for a in arrays]).data), arr)
            assert tensor.grad is not None
            assert tensor.grad.dtype == np.dtype(dtype)
            np.testing.assert_allclose(tensor.grad, numeric, **TOLS[dtype])


class TestElementwise:
    def test_add_mul_broadcast(self, rng, engine_dtype):
        check(lambda a, b: (a * b + a).sum(),
              rng.normal(size=(3, 4)), rng.normal(size=(4,)),
              dtype=engine_dtype)

    def test_sub_div(self, rng, engine_dtype):
        check(lambda a, b: ((a - b) / (b * b + 1.0)).sum(),
              rng.normal(size=(2, 3)), rng.uniform(0.5, 2.0, size=(2, 3)),
              dtype=engine_dtype)

    def test_pow_neg(self, rng, engine_dtype):
        check(lambda a: (-(a ** 3)).sum(), rng.uniform(0.5, 2.0, size=(4,)),
              dtype=engine_dtype)

    def test_nonlinearity_chain(self, rng, engine_dtype):
        check(lambda a: a.tanh().sigmoid().sum() + a.relu().sum()
              + a.leaky_relu(0.1).sum(),
              rng.normal(size=(3, 3)), dtype=engine_dtype)

    def test_exp_log_sqrt(self, rng, engine_dtype):
        check(lambda a: (a.exp().log().sqrt()).sum(),
              rng.uniform(0.5, 2.0, size=(4,)), dtype=engine_dtype)

    def test_clip(self, rng, engine_dtype):
        # Stay away from the clip boundaries: the subgradient there is
        # ill-defined and finite differences straddle the kink.
        data = rng.uniform(-2.0, 2.0, size=(8,))
        data = data[np.abs(np.abs(data) - 1.0) > 0.05]
        check(lambda a: (a.clip(-1.0, 1.0) * 2.0).sum(), data,
              dtype=engine_dtype)

    def test_where(self, rng, engine_dtype):
        cond = rng.random((3, 4)) > 0.5
        check(lambda a, b: (where(cond, a, b) ** 2).sum(),
              rng.normal(size=(3, 4)), rng.normal(size=(4,)),
              dtype=engine_dtype)


class TestReductions:
    def test_sum_negative_axis(self, rng, engine_dtype):
        check(lambda a: (a.sum(axis=-1) ** 2).sum(),
              rng.normal(size=(3, 4)), dtype=engine_dtype)

    def test_sum_tuple_axes(self, rng, engine_dtype):
        check(lambda a: (a.sum(axis=(0, 2)) ** 2).sum(),
              rng.normal(size=(2, 3, 4)), dtype=engine_dtype)

    def test_sum_keepdims(self, rng, engine_dtype):
        check(lambda a: ((a - a.sum(axis=0, keepdims=True)) ** 2).sum(),
              rng.normal(size=(3, 4)), dtype=engine_dtype)

    def test_mean_tuple_axes(self, rng, engine_dtype):
        check(lambda a: (a.mean(axis=(0, 1)) ** 2).sum(),
              rng.normal(size=(2, 3, 2)), dtype=engine_dtype)

    def test_softmax_log_softmax(self, rng, engine_dtype):
        w = np.arange(5.0)
        check(lambda a: (a.softmax() * w).sum()
              + (a.log_softmax() * w).sum(),
              rng.normal(size=(3, 5)), dtype=engine_dtype)


class TestMatmul:
    def test_2d_2d(self, rng, engine_dtype):
        check(lambda a, b: (a @ b).sum(),
              rng.normal(size=(3, 4)), rng.normal(size=(4, 2)),
              dtype=engine_dtype)

    def test_1d_2d(self, rng, engine_dtype):
        """Regression: 1-D left operand used to raise ValueError."""
        check(lambda a, b: ((a @ b) ** 2).sum(),
              rng.normal(size=(4,)), rng.normal(size=(4, 3)),
              dtype=engine_dtype)

    def test_2d_1d(self, rng, engine_dtype):
        check(lambda a, b: ((a @ b) ** 2).sum(),
              rng.normal(size=(3, 4)), rng.normal(size=(4,)),
              dtype=engine_dtype)

    def test_1d_1d(self, rng, engine_dtype):
        check(lambda a, b: (a @ b) * 2.0,
              rng.normal(size=(4,)), rng.normal(size=(4,)),
              dtype=engine_dtype)

    def test_transpose_reshape(self, rng, engine_dtype):
        check(lambda a: ((a.T @ a).reshape(-1) ** 2).sum(),
              rng.normal(size=(3, 4)), dtype=engine_dtype)


class TestIndexing:
    def test_basic_slice(self, rng, engine_dtype):
        check(lambda a: (a[:, 1:3] ** 2).sum(), rng.normal(size=(3, 5)),
              dtype=engine_dtype)

    def test_row_index(self, rng, engine_dtype):
        check(lambda a: (a[1] ** 2).sum(), rng.normal(size=(3, 5)),
              dtype=engine_dtype)

    def test_boolean_mask(self, rng, engine_dtype):
        mask = rng.random(6) > 0.4
        if not mask.any():
            mask[0] = True
        check(lambda a: (a[mask] ** 2).sum(), rng.normal(size=(6,)),
              dtype=engine_dtype)

    def test_fancy_repeated_indices(self, rng, engine_dtype):
        """Repeated fancy indices must still accumulate via add.at."""
        idx = np.array([0, 2, 2, 1])
        check(lambda a: (a[idx] * np.arange(1.0, 5.0)).sum(),
              rng.normal(size=(4,)), dtype=engine_dtype)


class TestCombinators:
    def test_concat(self, rng, engine_dtype):
        check(lambda a, b: (concat([a, b], axis=1) ** 2).sum(),
              rng.normal(size=(2, 3)), rng.normal(size=(2, 2)),
              dtype=engine_dtype)

    def test_concat_axis0(self, rng, engine_dtype):
        check(lambda a, b: (concat([a, b], axis=0) ** 2).sum(),
              rng.normal(size=(2, 3)), rng.normal(size=(1, 3)),
              dtype=engine_dtype)

    def test_stack(self, rng, engine_dtype):
        check(lambda a, b: (stack([a, b], axis=0) ** 2).sum(),
              rng.normal(size=(2, 3)), rng.normal(size=(2, 3)),
              dtype=engine_dtype)


class TestFusedKernels:
    @pytest.mark.parametrize("activation", [None, "relu", "leaky_relu",
                                            "tanh", "sigmoid"])
    def test_fused_linear(self, rng, engine_dtype, activation):
        check(lambda x, w, b: (fused_linear(
                  x, w, b, activation=activation) ** 2).sum(),
              rng.normal(size=(4, 3)), rng.normal(size=(3, 2)),
              rng.normal(size=(2,)), dtype=engine_dtype)

    def test_fused_linear_no_bias(self, rng, engine_dtype):
        check(lambda x, w: (fused_linear(x, w) ** 2).sum(),
              rng.normal(size=(4, 3)), rng.normal(size=(3, 2)),
              dtype=engine_dtype)

    def test_fused_linear_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            fused_linear(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))),
                         activation="softmax")

    def test_addmm(self, rng, engine_dtype):
        check(lambda base, x, w: (addmm(base, x, w) ** 2).sum(),
              rng.normal(size=(4, 2)), rng.normal(size=(4, 3)),
              rng.normal(size=(3, 2)), dtype=engine_dtype)

    def test_lstm_gates_and_step(self, rng, engine_dtype):
        hidden = 3
        coef_h = rng.normal(size=(2, hidden))
        coef_c = rng.normal(size=(2, hidden))

        def build(x, wx, h, wh, b, c):
            gates = lstm_gates(x, wx, h, wh, b)
            h_new, c_new = lstm_step(gates, c, hidden)
            return (h_new * coef_h).sum() + (c_new * coef_c).sum()

        check(build,
              rng.normal(size=(2, 4)), rng.normal(size=(4, 4 * hidden)),
              rng.normal(size=(2, hidden)),
              rng.normal(size=(hidden, 4 * hidden)),
              rng.normal(size=(4 * hidden,)), rng.normal(size=(2, hidden)),
              dtype=engine_dtype)

    def test_categorical_kl_fused(self, rng, engine_dtype):
        p_real = np.abs(rng.normal(size=4)) + 0.1

        def build(p):
            return categorical_kl(p_real, p.softmax(axis=-1).mean(axis=0))

        check(build, rng.normal(size=(3, 4)), dtype=engine_dtype)

    def test_categorical_kl_sum_two_blocks(self, rng, engine_dtype):
        real = np.abs(rng.normal(size=(6, 5))) + 0.05
        slices = [slice(0, 2), slice(2, 5)]

        def build(p):
            return categorical_kl_sum(real, p.softmax(axis=-1), slices)

        check(build, rng.normal(size=(4, 5)), dtype=engine_dtype)


class TestDtypeConfig:
    def test_set_default_dtype_validates(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype("int32")
        assert nn.get_default_dtype() is np.float64

    def test_context_manager_restores(self):
        assert nn.get_default_dtype() is np.float64
        with nn.default_dtype("float32"):
            assert nn.get_default_dtype() is np.float32
            assert nn.fast_math()
        assert nn.get_default_dtype() is np.float64
        assert not nn.fast_math()

    def test_tensor_follows_default(self):
        with nn.default_dtype(np.float32):
            t = Tensor([1.0, 2.0])
            assert t.data.dtype == np.float32
            assert (t * 2).data.dtype == np.float32
            assert t.sigmoid().data.dtype == np.float32

    def test_no_grad_detaches(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad
        z = x * 2.0
        assert z.requires_grad
        assert nn.is_grad_enabled()


class TestBatchedProjectionSplit:
    def test_sequence_lstm_fast_path_gradcheck(self, rng):
        """Numerical gradcheck through the shared-buffer row split."""
        from repro.nn import SequenceToOneLSTM

        xs = [rng.normal(size=(3, 4)) for _ in range(4)]

        def run(dtype):
            with nn.default_dtype(dtype):
                model = SequenceToOneLSTM(4, 5, rng=np.random.default_rng(2))
                steps = [Tensor(x, requires_grad=True) for x in xs]
                out = model(steps)
                (out * out).sum().backward()
                wx_grad = model.cell.weight_x.grad.copy()
                return [s.grad.copy() for s in steps], wx_grad

        grads64, wx64 = run("float64")   # parity path (per-step matmuls)
        grads32, wx32 = run("float32")   # batched projection + split
        for g64, g32 in zip(grads64, grads32):
            np.testing.assert_allclose(g32, g64, atol=1e-3, rtol=1e-2)
        np.testing.assert_allclose(wx32, wx64, atol=1e-3, rtol=1e-2)

    def test_split_backward_twice(self, rng):
        """The shared buffer must reset between backward passes."""
        from repro.nn import SequenceToOneLSTM

        with nn.default_dtype("float32"):
            model = SequenceToOneLSTM(3, 4, rng=np.random.default_rng(1))
            steps = [Tensor(rng.normal(size=(2, 3)), requires_grad=True)
                     for _ in range(3)]
            loss = (model(steps) ** 2).sum()
            loss.backward()
            first = steps[0].grad.copy()
            loss.backward()
            np.testing.assert_allclose(steps[0].grad, 2 * first, rtol=1e-5)
