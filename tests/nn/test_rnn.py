"""LSTM cell and sequence-to-one wrapper."""

import numpy as np
import pytest

from repro.nn import LSTMCell, SequenceToOneLSTM, Tensor

from tests.conftest import numeric_gradient


class TestLSTMCell:
    def test_state_shapes(self, rng):
        cell = LSTMCell(5, 8, rng=rng)
        h, c = cell.initial_state(4)
        h2, c2 = cell(Tensor(rng.normal(size=(4, 5))), (h, c))
        assert h2.shape == (4, 8)
        assert c2.shape == (4, 8)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        np.testing.assert_allclose(cell.bias.data[4:8], 1.0)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        state = cell.initial_state(2)
        for _ in range(20):
            state = cell(Tensor(rng.normal(size=(2, 3)) * 5), state)
        assert (np.abs(state[0].data) <= 1.0).all()

    def test_gradient_through_time(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        x = rng.normal(size=(4, 2))

        def run():
            state = cell.initial_state(4)
            for _ in range(3):
                state = cell(Tensor(x), state)
            return (state[0] ** 2).sum()

        run().backward()
        numeric = numeric_gradient(lambda: float(run().data),
                                   cell.weight_h.data)
        np.testing.assert_allclose(cell.weight_h.grad, numeric, atol=1e-6)

    def test_random_initial_state(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        h, c = cell.initial_state(5, rng=rng)
        assert not np.allclose(h.data, 0.0)


class TestSequenceToOneLSTM:
    def test_returns_final_hidden(self, rng):
        model = SequenceToOneLSTM(4, 6, rng=rng)
        steps = [Tensor(rng.normal(size=(3, 4))) for _ in range(5)]
        out = model(steps)
        assert out.shape == (3, 6)

    def test_empty_sequence_raises(self, rng):
        model = SequenceToOneLSTM(4, 6, rng=rng)
        with pytest.raises(ValueError):
            model([])

    def test_order_sensitivity(self, rng):
        """A sequence model must distinguish permuted inputs."""
        model = SequenceToOneLSTM(2, 4, rng=rng)
        a = Tensor(rng.normal(size=(1, 2)))
        b = Tensor(rng.normal(size=(1, 2)))
        out_ab = model([a, b]).data
        out_ba = model([b, a]).data
        assert not np.allclose(out_ab, out_ba)
