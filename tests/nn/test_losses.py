"""Loss functions: values and gradients."""

import numpy as np
import pytest

from repro.nn import (
    Tensor, bce_with_logits, binary_cross_entropy, categorical_kl,
    gaussian_kl, mse,
)

from tests.conftest import numeric_gradient


class TestBCEWithLogits:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(8, 1))
        targets = rng.integers(0, 2, size=(8, 1)).astype(float)
        loss = bce_with_logits(Tensor(logits), targets)
        probs = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(probs)
                   + (1 - targets) * np.log(1 - probs)).mean()
        assert float(loss.data) == pytest.approx(manual)

    def test_gradient_is_sigmoid_minus_target(self, rng):
        logits = rng.normal(size=(6, 1))
        targets = np.ones((6, 1))
        t = Tensor(logits, requires_grad=True)
        bce_with_logits(t, targets).backward()
        expected = (1 / (1 + np.exp(-logits)) - 1.0) / logits.size
        np.testing.assert_allclose(t.grad, expected)

    def test_stable_at_extreme_logits(self):
        loss = bce_with_logits(Tensor(np.array([[1000.0], [-1000.0]])),
                               np.array([[1.0], [0.0]]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)


class TestOtherLosses:
    def test_mse_zero_when_equal(self, rng):
        x = rng.normal(size=(4, 3))
        assert float(mse(Tensor(x), x).data) == pytest.approx(0.0)

    def test_mse_value(self):
        loss = mse(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(5.0)

    def test_binary_cross_entropy_on_probs(self):
        probs = Tensor(np.array([[0.9], [0.1]]))
        loss = binary_cross_entropy(probs, np.array([[1.0], [0.0]]))
        assert float(loss.data) == pytest.approx(-np.log(0.9), rel=1e-6)

    def test_categorical_kl_zero_when_equal(self):
        p = np.array([0.2, 0.3, 0.5])
        kl = categorical_kl(p, Tensor(p.copy()))
        assert float(kl.data) == pytest.approx(0.0, abs=1e-9)

    def test_categorical_kl_positive_when_different(self):
        p = np.array([0.9, 0.1])
        q = Tensor(np.array([0.1, 0.9]))
        assert float(categorical_kl(p, q).data) > 0.5

    def test_categorical_kl_gradient(self, rng):
        p = np.array([0.6, 0.4])
        q = rng.uniform(0.1, 0.9, size=2)
        q = q / q.sum()
        t = Tensor(q, requires_grad=True)
        categorical_kl(p, t).backward()
        numeric = numeric_gradient(
            lambda: float(categorical_kl(p, Tensor(q)).data), q)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    def test_gaussian_kl_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((4, 3)))
        logvar = Tensor(np.zeros((4, 3)))
        assert float(gaussian_kl(mu, logvar).data) == pytest.approx(0.0)

    def test_gaussian_kl_positive_otherwise(self, rng):
        mu = Tensor(rng.normal(size=(4, 3)) + 1.0)
        logvar = Tensor(rng.normal(size=(4, 3)))
        assert float(gaussian_kl(mu, logvar).data) > 0.0
