"""Autograd engine: forward values and gradients versus finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concat, stack, where
from repro.nn.tensor import _unbroadcast

from tests.conftest import numeric_gradient


def grad_check(build, *arrays, tol=1e-7):
    """``build(*tensors) -> scalar Tensor``; compare autograd vs numeric."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for arr, tensor in zip(arrays, tensors):
        numeric = numeric_gradient(lambda: float(build(
            *[Tensor(a) for a in arrays]).data), arr)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=tol, rtol=1e-5)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.arange(4.0))
        np.testing.assert_allclose((a + b).data,
                                   np.ones((3, 4)) + np.arange(4.0))

    def test_scalar_ops(self):
        a = Tensor(np.array([2.0, 3.0]))
        np.testing.assert_allclose((a * 2 + 1).data, [5.0, 7.0])
        np.testing.assert_allclose((1 - a).data, [-1.0, -2.0])
        np.testing.assert_allclose((a / 2).data, [1.0, 1.5])
        np.testing.assert_allclose((6 / a).data, [3.0, 2.0])

    def test_matmul(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        s = x.softmax(axis=-1).data
        np.testing.assert_allclose(s.sum(axis=1), np.ones(5))
        assert (s > 0).all()

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(x.log_softmax().data,
                                   np.log(x.softmax().data), atol=1e-12)

    def test_sigmoid_extremes_are_stable(self):
        x = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        s = x.sigmoid().data
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s, [0.0, 0.5, 1.0], atol=1e-12)

    def test_reshape_and_transpose(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        assert x.reshape(3, 4).shape == (3, 4)
        assert x.T.shape == (6, 2)

    def test_getitem_slice(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(x[:, 1:3].data, x.data[:, 1:3])

    def test_clip(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]))
        np.testing.assert_allclose(x.clip(-1, 1).data, [-1.0, 0.5, 1.0])

    def test_mean_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(x.mean(axis=0).data, x.data.mean(axis=0))
        np.testing.assert_allclose(x.mean().data, x.data.mean())

    def test_concat_and_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 2)))
        assert concat([a, b], axis=1).shape == (2, 5)
        assert stack([a, a], axis=0).shape == (2, 2, 3)

    def test_where(self):
        cond = np.array([True, False, True])
        out = where(cond, Tensor(np.ones(3)), Tensor(np.zeros(3)))
        np.testing.assert_allclose(out.data, [1.0, 0.0, 1.0])


class TestGradients:
    def test_add_mul(self, rng):
        grad_check(lambda a, b: (a * b + a).sum(),
                   rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_broadcast_grad(self, rng):
        grad_check(lambda a, b: (a + b).sum(),
                   rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_div(self, rng):
        grad_check(lambda a, b: (a / b).sum(),
                   rng.normal(size=(3,)), rng.uniform(1.0, 2.0, size=(3,)))

    def test_pow(self, rng):
        grad_check(lambda a: (a ** 3).sum(), rng.uniform(0.5, 2.0, size=(4,)))

    def test_matmul_grad(self, rng):
        grad_check(lambda a, b: (a @ b).sum(),
                   rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_tanh_sigmoid_relu_chain(self, rng):
        grad_check(lambda a: (a.tanh().sigmoid().relu()).sum(),
                   rng.normal(size=(3, 3)))

    def test_leaky_relu(self, rng):
        grad_check(lambda a: a.leaky_relu(0.1).sum(), rng.normal(size=(5,)))

    def test_exp_log_sqrt(self, rng):
        grad_check(lambda a: (a.exp().log().sqrt()).sum(),
                   rng.uniform(0.5, 2.0, size=(4,)))

    def test_softmax_grad(self, rng):
        grad_check(lambda a: (a.softmax() * np.arange(5.0)).sum(),
                   rng.normal(size=(3, 5)))

    def test_log_softmax_grad(self, rng):
        grad_check(lambda a: (a.log_softmax() * np.arange(4.0)).sum(),
                   rng.normal(size=(2, 4)))

    def test_getitem_grad(self, rng):
        grad_check(lambda a: (a[:, 1:3] ** 2).sum(), rng.normal(size=(3, 5)))

    def test_concat_grad(self, rng):
        grad_check(lambda a, b: (concat([a, b], axis=1) ** 2).sum(),
                   rng.normal(size=(2, 3)), rng.normal(size=(2, 2)))

    def test_mean_keepdims_grad(self, rng):
        grad_check(lambda a: ((a - a.mean(axis=0, keepdims=True)) ** 2).sum(),
                   rng.normal(size=(4, 3)))

    def test_grad_accumulates_on_reuse(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x * x + x * 2.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, 2 * x.data + 2.0)

    def test_backward_twice_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 3.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 6.0))

    def test_detach_cuts_tape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        (y * 5.0).sum().backward()
        assert x.grad is None

    def test_backward_shape_mismatch_raises(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones(3))


class TestUnbroadcast:
    def test_no_op(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)) is g

    def test_leading_axes(self):
        g = np.ones((5, 3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 4)),
                                   np.full((3, 4), 5.0))

    def test_kept_singleton(self):
        g = np.ones((3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 1)),
                                   np.full((3, 1), 4.0))


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5))
def test_property_sum_equals_numpy(n, m):
    data = np.arange(float(n * m)).reshape(n, m)
    assert float(Tensor(data).sum().data) == pytest.approx(data.sum())


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=1, max_size=8))
def test_property_softmax_is_distribution(values):
    s = Tensor(np.array([values])).softmax().data
    assert s.min() >= 0
    assert s.sum() == pytest.approx(1.0)
