"""Module system: parameter collection, modes, state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor


class TinyModel(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=rng)
        self.fc2 = Linear(4, 2, rng=rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


def test_parameters_collected_recursively(rng):
    model = TinyModel(rng)
    # fc1 (W, b) + fc2 (W, b) + scale
    assert len(model.parameters()) == 5


def test_named_parameters_have_paths(rng):
    names = {name for name, _ in TinyModel(rng).named_parameters()}
    assert "fc1.weight" in names
    assert "scale" in names


def test_zero_grad_clears(rng):
    model = TinyModel(rng)
    model(Tensor(rng.normal(size=(2, 3)))).sum().backward()
    assert model.fc1.weight.grad is not None
    model.zero_grad()
    assert model.fc1.weight.grad is None


def test_train_eval_propagates(rng):
    model = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
    model.eval()
    assert not model.layers[0].training
    model.train()
    assert model.layers[1].training


def test_state_dict_round_trip(rng):
    model = TinyModel(rng)
    state = model.state_dict()
    original = model.fc1.weight.data.copy()
    model.fc1.weight.data += 100.0
    model.load_state_dict(state)
    np.testing.assert_allclose(model.fc1.weight.data, original)


def test_state_dict_is_a_copy(rng):
    model = TinyModel(rng)
    state = model.state_dict()
    model.fc1.weight.data += 1.0
    assert not np.allclose(state["fc1.weight"], model.fc1.weight.data)


def test_load_state_dict_missing_key(rng):
    model = TinyModel(rng)
    with pytest.raises(KeyError):
        model.load_state_dict({})


def test_load_state_dict_shape_mismatch(rng):
    model = TinyModel(rng)
    state = model.state_dict()
    state["fc1.weight"] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_num_parameters(rng):
    model = Linear(3, 4, rng=rng)
    assert model.num_parameters() == 3 * 4 + 4


class TestStaleRegistration:
    """Reassigning a Parameter/Module attribute must drop the old entry.

    Regression: the orphan used to linger in ``_params``/``_modules``,
    so ``parameters()`` kept optimizing it and ``state_dict()``
    persisted dead weights.
    """

    def test_parameter_replaced_by_none_is_dropped(self, rng):
        model = Linear(2, 3, rng=rng)
        assert len(model.parameters()) == 2
        model.bias = None
        assert len(model.parameters()) == 1
        assert "bias" not in dict(model.named_parameters())
        assert "bias" not in model.state_dict()

    def test_parameter_replaced_by_array_is_dropped(self, rng):
        model = Linear(2, 3, rng=rng)
        model.weight = np.zeros((2, 3))
        assert [name for name, _ in model.named_parameters()] == ["bias"]

    def test_module_replaced_by_plain_value_is_dropped(self, rng):
        model = TinyModel(rng)
        model.fc2 = None
        names = [name for name, _ in model.named_parameters()]
        assert all(not name.startswith("fc2.") for name in names)
        assert all(not key.startswith("fc2.") for key in model.state_dict())

    def test_parameter_reassignment_keeps_single_entry(self, rng):
        model = Linear(2, 3, rng=rng)
        new_weight = Parameter(np.ones((2, 3)))
        model.weight = new_weight
        params = model.parameters()
        assert len(params) == 2
        assert any(p is new_weight for p in params)

    def test_module_replaced_by_parameter_and_back(self, rng):
        model = TinyModel(rng)
        model.fc1 = Parameter(np.ones(3))
        assert "fc1" in dict(model.named_parameters())
        assert all(not name.startswith("fc1.")
                   for name, _ in model.named_parameters())
        model.fc1 = Linear(2, 2, rng=rng)
        assert "fc1" not in dict(model.named_parameters())
        assert "fc1.weight" in dict(model.named_parameters())

    def test_optimizer_no_longer_sees_dead_weights(self, rng):
        model = TinyModel(rng)
        dead = model.fc1
        model.fc1 = Linear(2, 2, rng=rng)
        live_ids = {id(p) for p in model.parameters()}
        assert id(dead.weight) not in live_ids

    def test_buffer_replaced_by_parameter_drops_buffer_entry(self, rng):
        class WithBuffer(Module):
            def __init__(self):
                super().__init__()
                self.register_buffer("rm", np.zeros(3))

        model = WithBuffer()
        model.rm = Parameter(np.ones(3))
        assert "rm" not in dict(model.named_buffers())
        np.testing.assert_allclose(model.state_dict()["rm"], 1.0)
        assert any(p is model.rm for p in model.parameters())
