"""Module system: parameter collection, modes, state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor


class TinyModel(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=rng)
        self.fc2 = Linear(4, 2, rng=rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


def test_parameters_collected_recursively(rng):
    model = TinyModel(rng)
    # fc1 (W, b) + fc2 (W, b) + scale
    assert len(model.parameters()) == 5


def test_named_parameters_have_paths(rng):
    names = {name for name, _ in TinyModel(rng).named_parameters()}
    assert "fc1.weight" in names
    assert "scale" in names


def test_zero_grad_clears(rng):
    model = TinyModel(rng)
    model(Tensor(rng.normal(size=(2, 3)))).sum().backward()
    assert model.fc1.weight.grad is not None
    model.zero_grad()
    assert model.fc1.weight.grad is None


def test_train_eval_propagates(rng):
    model = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
    model.eval()
    assert not model.layers[0].training
    model.train()
    assert model.layers[1].training


def test_state_dict_round_trip(rng):
    model = TinyModel(rng)
    state = model.state_dict()
    original = model.fc1.weight.data.copy()
    model.fc1.weight.data += 100.0
    model.load_state_dict(state)
    np.testing.assert_allclose(model.fc1.weight.data, original)


def test_state_dict_is_a_copy(rng):
    model = TinyModel(rng)
    state = model.state_dict()
    model.fc1.weight.data += 1.0
    assert not np.allclose(state["fc1.weight"], model.fc1.weight.data)


def test_load_state_dict_missing_key(rng):
    model = TinyModel(rng)
    with pytest.raises(KeyError):
        model.load_state_dict({})


def test_load_state_dict_shape_mismatch(rng):
    model = TinyModel(rng)
    state = model.state_dict()
    state["fc1.weight"] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_num_parameters(rng):
    model = Linear(3, 4, rng=rng)
    assert model.num_parameters() == 3 * 4 + 4
