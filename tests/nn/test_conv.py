"""Convolutions: shapes, values, adjointness, and gradients."""

import numpy as np
import pytest

from repro.nn import Conv2d, ConvTranspose2d, BatchNorm2d, Tensor
from repro.nn.conv import _col2im, _im2col

from tests.conftest import numeric_gradient


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, oh, ow = _im2col(x, 3, 3, stride=2, pad=1)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2, 3 * 9, 16)

    def test_adjoint_identity(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint pair."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols, oh, ow = _im2col(x, 3, 3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = _col2im(y, x.shape, 3, 3, stride=1, pad=1, oh=oh, ow=ow)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(1, 4, kernel_size=4, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(3, 1, 8, 8))))
        assert out.shape == (3, 4, 4, 4)

    def test_known_value(self):
        conv = Conv2d(1, 1, kernel_size=2, stride=1, padding=0)
        conv.weight.data = np.ones((1, 1, 2, 2))
        conv.bias.data = np.zeros(1)
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = conv(Tensor(x)).data
        # Each output cell sums its 2x2 window.
        np.testing.assert_allclose(out[0, 0], [[8.0, 12.0], [20.0, 24.0]])

    def test_gradients(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6))
        t = Tensor(x, requires_grad=True)
        (conv(t) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda: float((conv(Tensor(x)) ** 2).sum().data), x)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)
        numeric_w = numeric_gradient(
            lambda: float((conv(Tensor(x)) ** 2).sum().data),
            conv.weight.data)
        np.testing.assert_allclose(conv.weight.grad, numeric_w, atol=1e-6)


class TestConvTranspose2d:
    def test_inverts_conv_shape(self, rng):
        deconv = ConvTranspose2d(3, 1, kernel_size=4, stride=2, padding=1,
                                 rng=rng)
        out = deconv(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 1, 8, 8)

    def test_output_size_formula(self, rng):
        deconv = ConvTranspose2d(1, 1, kernel_size=4, stride=2, padding=1)
        assert deconv.output_size(4) == 8
        assert deconv.output_size(2) == 4

    def test_gradients(self, rng):
        deconv = ConvTranspose2d(2, 2, kernel_size=4, stride=2, padding=1,
                                 rng=rng)
        x = rng.normal(size=(1, 2, 3, 3))
        t = Tensor(x, requires_grad=True)
        (deconv(t) ** 2).sum().backward()
        numeric = numeric_gradient(
            lambda: float((deconv(Tensor(x)) ** 2).sum().data), x)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-6)

    def test_adjoint_of_conv(self, rng):
        """conv and conv_transpose with tied weights are adjoint maps.

        Sizes must round-trip exactly: 8 --conv(k4,s2,p1)--> 4
        --deconv(k4,s2,p1)--> 8.
        """
        conv = Conv2d(2, 3, kernel_size=4, stride=2, padding=1, rng=rng,
                      bias=False)
        deconv = ConvTranspose2d(3, 2, kernel_size=4, stride=2, padding=1,
                                 bias=False)
        # conv weight (OC, C, k, k) doubles as deconv weight (in=OC, out=C).
        deconv.weight.data = conv.weight.data
        x = rng.normal(size=(1, 2, 8, 8))
        y = rng.normal(size=(1, 3, 4, 4))
        lhs = float((conv(Tensor(x)).data * y).sum())
        rhs = float((x * deconv(Tensor(y)).data).sum())
        assert lhs == pytest.approx(rhs)


class TestBatchNorm2d:
    def test_per_channel_normalization(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(2.0, 3.0, size=(8, 3, 4, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)

    def test_eval_mode(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(5):
            bn(Tensor(rng.normal(size=(8, 2, 3, 3))))
        bn.eval()
        out = bn(Tensor(rng.normal(size=(1, 2, 3, 3))))
        assert np.isfinite(out.data).all()
