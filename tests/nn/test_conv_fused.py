"""CNN fast path: strided-view unfold parity, fused conv nodes, pooling.

Three contracts are covered, both engine dtypes where relevant:

* the strided-view ``_im2col`` is **bit-identical** to the historical
  loop-based implementation (and ``_col2im`` remains its exact adjoint);
* the fused ``conv2d_bn_act`` / ``conv_transpose2d_bn_act`` kernels
  carry correct gradients (finite differences) across stride > 1,
  padding > 0, bias on/off, batch-norm on/off and every activation;
* degenerate spatial shapes raise a ``ValueError`` naming the layer
  geometry instead of failing later in ``reshape``.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    ArrayPool, BatchNorm2d, Conv2d, ConvTranspose2d, Tensor,
    conv2d_bn_act, conv_transpose2d_bn_act,
)
from repro.nn.conv import (
    _col2im, _col2im_gemm, _im2col, _im2col_gemm, _im2col_loop,
)

from tests.conftest import numeric_gradient

TOLS = {
    "float64": dict(atol=1e-6, rtol=1e-5),
    "float32": dict(atol=5e-3, rtol=5e-2),
}


@pytest.fixture(params=["float64", "float32"])
def engine_dtype(request):
    with nn.default_dtype(request.param):
        yield request.param


GEOMETRIES = [
    # (n, c, h, w, kernel, stride, pad)
    (2, 3, 8, 8, 3, 1, 0),
    (3, 2, 8, 8, 4, 2, 1),
    (2, 4, 5, 7, 3, 2, 2),
    (1, 1, 6, 6, 5, 3, 1),
]


class TestStridedViewParity:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_im2col_bit_identical_to_loop(self, rng, geometry):
        n, c, h, w, k, s, p = geometry
        x = rng.normal(size=(n, c, h, w))
        fast, oh, ow = _im2col(x, k, k, s, p)
        loop, oh2, ow2 = _im2col_loop(x, k, k, s, p)
        assert (oh, ow) == (oh2, ow2)
        assert fast.dtype == loop.dtype
        np.testing.assert_array_equal(fast, loop)

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_gemm_layout_is_reordering_of_parity_layout(self, rng, geometry):
        n, c, h, w, k, s, p = geometry
        x = rng.normal(size=(n, c, h, w))
        cols, oh, ow = _im2col(x, k, k, s, p)
        gemm, _, _ = _im2col_gemm(x, k, k, s, p)
        # (N, C*k*k, oh*ow) -> (N*oh*ow, C*k*k) is a pure transpose.
        np.testing.assert_array_equal(
            gemm, cols.transpose(0, 2, 1).reshape(n * oh * ow, c * k * k))

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_col2im_gemm_adjoint(self, rng, geometry):
        """<im2col_gemm(x), y> == <x, col2im_gemm(y)>."""
        n, c, h, w, k, s, p = geometry
        x = rng.normal(size=(n, c, h, w))
        cols, oh, ow = _im2col_gemm(x, k, k, s, p)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = _col2im_gemm(y, x.shape, k, k, s, p, oh, ow)
        assert lhs == pytest.approx(float((x * back).sum()))

    def test_pooled_im2col_matches_unpooled(self, rng):
        pool = ArrayPool()
        x = rng.normal(size=(2, 3, 8, 8))
        a, _, _ = _im2col(x, 4, 4, 2, 1, pool)
        pool.put(a.copy())  # seed the pool with a same-shaped buffer
        b, _, _ = _im2col(x, 4, 4, 2, 1, pool)
        reference, _, _ = _im2col_loop(x, 4, 4, 2, 1)
        np.testing.assert_array_equal(b, reference)


class TestArrayPool:
    def test_take_put_recycles(self):
        pool = ArrayPool()
        a = pool.take((3, 4), np.float32)
        assert a.shape == (3, 4) and a.dtype == np.float32
        pool.put(a)
        assert pool.take((3, 4), np.float32) is a
        # A different shape/dtype allocates fresh.
        assert pool.take((3, 4), np.float64) is not a

    def test_capacity_bound(self):
        pool = ArrayPool(max_per_key=1)
        a, b = np.empty(3), np.empty(3)
        pool.put(a)
        pool.put(b)  # beyond capacity: dropped
        assert pool.take((3,), np.float64) is a
        assert pool.take((3,), np.float64) is not b


def _gradcheck(build, arrays, dtype):
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    build(tensors).backward()
    with nn.default_dtype("float64"):
        for tensor, array in zip(tensors, arrays):
            numeric = numeric_gradient(
                lambda: float(build([Tensor(a) for a in arrays]).data),
                array)
            assert tensor.grad is not None
            np.testing.assert_allclose(tensor.grad, numeric, **TOLS[dtype])


class TestFusedConvGradients:
    @pytest.mark.parametrize("bias", [True, False])
    @pytest.mark.parametrize("activation", [None, "relu", "leaky_relu",
                                            "tanh"])
    def test_conv2d_bn_act(self, rng, engine_dtype, bias, activation):
        bn = BatchNorm2d(3)
        arrays = [rng.normal(size=(4, 2, 6, 6)),
                  rng.normal(size=(3, 2, 3, 3)) * 0.4]
        if bias:
            arrays.append(rng.normal(size=3))

        def build(ts):
            b = ts[2] if bias else None
            return (conv2d_bn_act(ts[0], ts[1], b, bn=bn,
                                  activation=activation, stride=2,
                                  padding=1) ** 2).sum()

        _gradcheck(build, arrays, engine_dtype)

    @pytest.mark.parametrize("bias", [True, False])
    @pytest.mark.parametrize("activation", [None, "relu", "tanh"])
    def test_conv_transpose2d_bn_act(self, rng, engine_dtype, bias,
                                     activation):
        bn = BatchNorm2d(2)
        arrays = [rng.normal(size=(3, 3, 3, 3)),
                  rng.normal(size=(3, 2, 4, 4)) * 0.4]
        if bias:
            arrays.append(rng.normal(size=2))

        def build(ts):
            b = ts[2] if bias else None
            return (conv_transpose2d_bn_act(ts[0], ts[1], b, bn=bn,
                                            activation=activation, stride=2,
                                            padding=1) ** 2).sum()

        _gradcheck(build, arrays, engine_dtype)

    def test_conv_without_bn(self, rng, engine_dtype):
        _gradcheck(
            lambda ts: (conv2d_bn_act(ts[0], ts[1], ts[2],
                                      activation="leaky_relu", stride=1,
                                      padding=2) ** 2).sum(),
            [rng.normal(size=(2, 2, 5, 5)),
             rng.normal(size=(3, 2, 3, 3)) * 0.4, rng.normal(size=3)],
            engine_dtype)

    def test_eval_mode_bn(self, rng, engine_dtype):
        bn = BatchNorm2d(3)
        bn.running_mean = rng.normal(size=(1, 3, 1, 1)) * 0.1
        bn.running_var = rng.uniform(0.5, 1.5, size=(1, 3, 1, 1))
        bn.eval()
        _gradcheck(
            lambda ts: (conv2d_bn_act(ts[0], ts[1], None, bn=bn,
                                      activation="relu", stride=2,
                                      padding=1) ** 2).sum(),
            [rng.normal(size=(2, 2, 6, 6)),
             rng.normal(size=(3, 2, 4, 4)) * 0.4],
            engine_dtype)

    def test_bn_parameter_gradients(self, rng, engine_dtype):
        bn = BatchNorm2d(3)
        x = rng.normal(size=(4, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3)) * 0.4

        def loss():
            return (conv2d_bn_act(Tensor(x), Tensor(w), None, bn=bn,
                                  activation="tanh", stride=2,
                                  padding=1) ** 2).sum()

        bn.gamma.zero_grad()
        bn.beta.zero_grad()
        loss().backward()
        with nn.default_dtype("float64"):
            for param in (bn.gamma, bn.beta):
                numeric = numeric_gradient(lambda: float(loss().data),
                                           param.data)
                np.testing.assert_allclose(param.grad, numeric,
                                           **TOLS[engine_dtype])


class TestFusedMatchesComposed:
    """The fused kernels agree with the composed parity op chain."""

    def test_conv_stack_agreement(self, rng):
        bn = BatchNorm2d(4)
        conv = Conv2d(2, 4, kernel_size=4, stride=2, padding=1, rng=rng)
        x = rng.normal(size=(6, 2, 8, 8))
        composed = conv._forward_parity(Tensor(x))
        composed = bn(composed).leaky_relu(0.2)
        bn_fused = BatchNorm2d(4)  # fresh running stats
        fused = conv2d_bn_act(Tensor(x), conv.weight, conv.bias, bn=bn_fused,
                              activation="leaky_relu", stride=2, padding=1)
        np.testing.assert_allclose(fused.data, composed.data,
                                   atol=1e-10, rtol=1e-10)
        np.testing.assert_allclose(bn_fused.running_mean, bn.running_mean,
                                   atol=1e-12)

    def test_deconv_stack_agreement(self, rng):
        bn = BatchNorm2d(2)
        deconv = ConvTranspose2d(3, 2, kernel_size=4, stride=2, padding=1,
                                 rng=rng)
        x = rng.normal(size=(5, 3, 4, 4))
        composed = deconv._forward_parity(Tensor(x))
        composed = bn(composed).relu()
        bn_fused = BatchNorm2d(2)
        fused = conv_transpose2d_bn_act(Tensor(x), deconv.weight, deconv.bias,
                                        bn=bn_fused, activation="relu",
                                        stride=2, padding=1)
        np.testing.assert_allclose(fused.data, composed.data,
                                   atol=1e-10, rtol=1e-10)

    def test_module_forward_dispatches_per_dtype(self, rng):
        """float32 takes the fused kernel; float64 the parity einsums —
        outputs agree to float32 precision."""
        with nn.default_dtype("float64"):
            conv = Conv2d(1, 3, kernel_size=4, stride=2, padding=1, rng=rng)
            x = rng.normal(size=(4, 1, 8, 8))
            ref = conv(Tensor(x), activation="leaky_relu").data
        with nn.default_dtype("float32"):
            conv32 = Conv2d(1, 3, kernel_size=4, stride=2, padding=1)
            conv32.weight.data = conv.weight.data.astype(np.float32)
            conv32.bias.data = conv.bias.data.astype(np.float32)
            out = conv32(Tensor(x), activation="leaky_relu").data
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, ref, atol=1e-4, rtol=1e-4)

    def test_buffer_reuse_across_two_forwards(self, rng):
        """The real|fake discriminator pattern: two forwards through one
        layer before backward must not corrupt the first tape's columns."""
        conv = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        a = rng.normal(size=(2, 2, 6, 6))
        b = rng.normal(size=(2, 2, 6, 6))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        ((conv(ta) ** 2).sum() + (conv(tb) ** 2).sum()).backward()
        for t, arr in ((ta, a), (tb, b)):
            numeric = numeric_gradient(
                lambda: float((conv(Tensor(arr)) ** 2).sum().data), arr)
            np.testing.assert_allclose(t.grad, numeric, atol=1e-6)


class TestDegenerateShapes:
    def test_conv_too_small_input_raises(self, engine_dtype, rng):
        conv = Conv2d(1, 2, kernel_size=5, rng=rng)
        with pytest.raises(ValueError, match="kernel_size=5"):
            conv(Tensor(rng.normal(size=(1, 1, 3, 3))))

    def test_conv_stride_padding_in_message(self, rng):
        conv = Conv2d(1, 2, kernel_size=7, stride=2, padding=1, rng=rng)
        with pytest.raises(ValueError, match=r"stride=2.*padding=1"):
            conv(Tensor(rng.normal(size=(2, 1, 4, 4))))

    def test_deconv_overpadded_raises(self, engine_dtype, rng):
        deconv = ConvTranspose2d(1, 1, kernel_size=2, stride=1, padding=3,
                                 rng=rng)
        with pytest.raises(ValueError):
            deconv(Tensor(rng.normal(size=(1, 1, 2, 2))))


class TestFastMathDtypeFlow:
    def test_eval_bn_keeps_float32_stream(self, rng):
        """Eval-mode BN inside the fused kernels must cast the float64
        running-stat buffers, not upcast the float32 stream."""
        with nn.default_dtype("float32"):
            for module in (Conv2d(2, 3, kernel_size=4, stride=2, padding=1),
                           ConvTranspose2d(2, 3, kernel_size=4, stride=2,
                                           padding=1)):
                bn = BatchNorm2d(3)
                bn.eval()
                module.eval()
                out = module(Tensor(rng.normal(size=(2, 2, 4, 4))),
                             activation="relu", bn=bn)
                assert out.data.dtype == np.float32


class TestBatchNormEvalFused:
    def test_bn1d_eval_single_node_bit_identical(self, rng):
        from repro.nn import BatchNorm1d

        bn = BatchNorm1d(5)
        for _ in range(3):
            bn(Tensor(rng.normal(1.5, 2.0, size=(16, 5))))
        bn.eval()
        x = rng.normal(size=(7, 5))
        out = bn(Tensor(x))
        inv = 1.0 / np.sqrt(bn.running_var + bn.eps)
        expected = ((x - bn.running_mean) * inv) * bn.gamma.data \
            + bn.beta.data
        np.testing.assert_array_equal(out.data, expected)
        assert out._parents  # single fused node, parents wired

    def test_bn2d_eval_single_node_bit_identical(self, rng):
        bn = BatchNorm2d(3)
        for _ in range(3):
            bn(Tensor(rng.normal(0.5, 1.5, size=(8, 3, 4, 4))))
        bn.eval()
        x = rng.normal(size=(4, 3, 4, 4))
        out = bn(Tensor(x))
        inv = 1.0 / np.sqrt(bn.running_var + bn.eps)
        expected = ((x - bn.running_mean) * inv) * bn.gamma.data \
            + bn.beta.data
        np.testing.assert_array_equal(out.data, expected)

    def test_bn1d_eval_gradients(self, rng, engine_dtype):
        from repro.nn import BatchNorm1d

        bn = BatchNorm1d(4)
        bn.running_mean = rng.normal(size=4)
        bn.running_var = rng.uniform(0.5, 2.0, size=4)
        bn.eval()
        x = rng.normal(size=(6, 4))
        t = Tensor(x, requires_grad=True)
        (bn(t, activation="relu") ** 2).sum().backward()
        with nn.default_dtype("float64"):
            numeric = numeric_gradient(
                lambda: float((bn(Tensor(x), activation="relu") ** 2)
                              .sum().data), x)
        np.testing.assert_allclose(t.grad, numeric, **TOLS[engine_dtype])
