"""Dense layers: Linear, BatchNorm1d, activations, Dropout."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d, Dropout, LeakyReLU, Linear, ReLU, Sequential, Sigmoid,
    Tanh, Tensor,
)

from tests.conftest import numeric_gradient


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng=rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_weight_gradient(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        layer(Tensor(x)).sum().backward()
        numeric = numeric_gradient(
            lambda: float(layer(Tensor(x)).sum().data), layer.weight.data)
        np.testing.assert_allclose(layer.weight.grad, numeric, atol=1e-7)


class TestBatchNorm1d:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm1d(4)
        x = rng.normal(3.0, 2.0, size=(64, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_track_batches(self, rng):
        bn = BatchNorm1d(2, momentum=0.5)
        x = rng.normal(5.0, 1.0, size=(128, 2))
        for _ in range(20):
            bn(Tensor(x))
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=0), atol=0.1)

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm1d(2)
        x = rng.normal(size=(32, 2))
        for _ in range(10):
            bn(Tensor(x))
        bn.eval()
        single = bn(Tensor(x[:1]))
        assert np.isfinite(single.data).all()

    def test_gamma_beta_trainable(self, rng):
        bn = BatchNorm1d(3)
        out = bn(Tensor(rng.normal(size=(16, 3))))
        out.sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestActivationsAndDropout:
    def test_activation_modules(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert (ReLU()(x).data >= 0).all()
        assert (np.abs(Tanh()(x).data) <= 1).all()
        assert ((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1)).all()
        leaky = LeakyReLU(0.2)(x).data
        np.testing.assert_allclose(leaky[x.data < 0], 0.2 * x.data[x.data < 0])

    def test_dropout_train_vs_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x).data
        assert (out_train == 0).any()
        # Inverted dropout preserves the mean roughly.
        assert out_train.mean() == pytest.approx(1.0, abs=0.2)
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_sequential_composes(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(),
                           Linear(8, 2, rng=rng))
        out = model(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 2)
        assert len(model.parameters()) == 4
