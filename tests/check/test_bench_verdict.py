"""The regression gate's machine-readable verdict sidecar.

``benchmarks/check_bench_regression.py`` writes a verdict JSON next to
the ``current`` file (or at ``--json-out``) on every run, including
error exits — CI annotations consume it without scraping stdout.
"""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_bench_regression",
    REPO / "benchmarks" / "check_bench_regression.py")
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


def _microbench(path, cnn_ms, mlp_ms=10.0):
    payload = {"rows": [
        {"arch": "cnn", "dtype": "float32", "train_step_ms": cnn_ms},
        {"arch": "mlp", "dtype": "float32", "train_step_ms": mlp_ms},
    ]}
    path.write_text(json.dumps(payload))
    return str(path)


def _serving(path, one, four):
    payload = {"rows": [
        {"mode": "throughput", "workers": 1, "rows_per_sec": one},
        {"mode": "throughput", "workers": 4, "rows_per_sec": four},
    ]}
    path.write_text(json.dumps(payload))
    return str(path)


class TestVerdictSidecar:
    def test_ok_run_writes_default_sidecar(self, tmp_path, capsys):
        baseline = _microbench(tmp_path / "base.json", cnn_ms=20.0)
        current = _microbench(tmp_path / "curr.json", cnn_ms=21.0)
        assert bench_gate.main([baseline, current]) == 0
        verdict = json.loads(
            (tmp_path / "curr.json.verdict.json").read_text())
        assert verdict["mode"] == "train_step"
        assert verdict["status"] == "ok"
        assert verdict["error"] is None
        assert verdict["relative_to"] == "mlp"
        assert verdict["absolute"] is False
        (comparison,) = verdict["comparisons"]
        assert comparison["ok"] is True
        assert comparison["baseline"] == pytest.approx(2.0)
        assert comparison["current"] == pytest.approx(2.1)
        assert comparison["change"] == pytest.approx(0.05)

    def test_failing_run_marks_the_comparison(self, tmp_path, capsys):
        baseline = _microbench(tmp_path / "base.json", cnn_ms=20.0)
        current = _microbench(tmp_path / "curr.json", cnn_ms=30.0)
        out = tmp_path / "verdict.json"
        assert bench_gate.main([baseline, current,
                                "--json-out", str(out)]) == 1
        verdict = json.loads(out.read_text())
        assert verdict["status"] == "fail"
        (comparison,) = verdict["comparisons"]
        assert comparison["ok"] is False
        assert comparison["change"] == pytest.approx(0.5)

    def test_error_run_still_writes_a_verdict(self, tmp_path, capsys):
        baseline = _microbench(tmp_path / "base.json", cnn_ms=20.0)
        missing = str(tmp_path / "nope.json")
        out = tmp_path / "verdict.json"
        assert bench_gate.main([baseline, missing,
                                "--json-out", str(out)]) == 1
        verdict = json.loads(out.read_text())
        assert verdict["status"] == "error"
        assert "FileNotFoundError" in verdict["error"]
        assert verdict["comparisons"] == []

    def test_serving_mode_records_the_scaling_metric(self, tmp_path,
                                                     capsys):
        baseline = _serving(tmp_path / "base.json", one=100.0, four=300.0)
        current = _serving(tmp_path / "curr.json", one=100.0, four=290.0)
        assert bench_gate.main([baseline, str(tmp_path / "curr.json"),
                                "--mode", "serving"]) == 0
        verdict = json.loads(
            (tmp_path / "curr.json.verdict.json").read_text())
        assert verdict["mode"] == "serving"
        assert verdict["relative_to"] == "1"
        (comparison,) = verdict["comparisons"]
        assert "4 workers" in comparison["metric"]
        assert comparison["baseline"] == pytest.approx(3.0)
        assert comparison["current"] == pytest.approx(2.9)

    def test_consecutive_runs_do_not_accumulate(self, tmp_path, capsys):
        baseline = _microbench(tmp_path / "base.json", cnn_ms=20.0)
        current = _microbench(tmp_path / "curr.json", cnn_ms=20.0)
        bench_gate.main([baseline, current])
        bench_gate.main([baseline, current])
        verdict = json.loads(
            (tmp_path / "curr.json.verdict.json").read_text())
        assert len(verdict["comparisons"]) == 1
