"""The lint's own gate: the real ``src/`` tree must be clean.

This is the executable form of the repo's correctness ratchet — every
library module satisfies RC001–RC005 modulo a small, justified baseline
that is only allowed to shrink.
"""

import pathlib

from repro.check.lint import (
    Finding, lint_paths, load_baseline, main,
)

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = str(REPO / "src")
BASELINE = str(REPO / ".repro-lint-baseline")


def test_src_tree_clean_modulo_baseline(capsys):
    status = main([SRC, "--baseline", BASELINE])
    out = capsys.readouterr().out
    assert status == 0, out
    assert "0 finding(s)" in out
    assert "0 stale" in out


def test_baseline_stays_small():
    entries = load_baseline(BASELINE)
    assert len(entries) <= 5
    # Today's entries are all deliberate dtype pins; anything new needs
    # a written justification in the baseline file.
    assert all(rule == "RC004" for rule, _, _ in entries)


def test_scripts_profile_clean_on_examples_and_benchmarks(capsys):
    paths = [p for p in (REPO / "examples", REPO / "benchmarks")
             if p.is_dir()]
    assert paths, "expected examples/ and benchmarks/ to exist"
    status = main([str(p) for p in paths]
                  + ["--profile", "scripts", "--no-baseline"])
    out = capsys.readouterr().out
    assert status == 0, out


def test_unsuppressed_finding_fails_the_gate(tmp_path, capsys):
    bad = tmp_path / "module.py"
    bad.write_text("import numpy as np\n\n"
                   "def draw(n):\n"
                   "    return np.random.rand(n)\n")
    status = main([str(bad), "--no-baseline"])
    out = capsys.readouterr().out
    assert status == 1
    assert "RC001" in out


def test_stale_baseline_entry_fails_the_gate(tmp_path, capsys):
    clean = tmp_path / "module.py"
    clean.write_text("def ok():\n    return 1\n")
    baseline = tmp_path / "baseline"
    baseline.write_text("RC001 module.py::gone\n")
    status = main([str(clean), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert status == 1
    assert "stale baseline entry" in out


def test_write_baseline_round_trip(tmp_path, capsys):
    bad = tmp_path / "module.py"
    bad.write_text("import numpy as np\n\n"
                   "def draw(n):\n"
                   "    return np.random.rand(n)\n")
    baseline = tmp_path / "baseline"
    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    # The freshly written baseline suppresses exactly those findings.
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_findings_render_file_line_rule_and_hint():
    findings = lint_paths([str(REPO / "src" / "repro" / "gan")])
    # The gan package has baselined RC004 findings; check the report
    # shape on one of them.
    assert findings, "expected the known baselined findings to fire"
    rendered = findings[0].render()
    assert isinstance(findings[0], Finding)
    assert findings[0].path in rendered
    assert f":{findings[0].line}:" in rendered
    assert findings[0].rule in rendered
    assert "(" in rendered  # fix hint suffix
