"""Rule-by-rule fixtures for the ``repro.check.lint`` static rules.

Each rule gets at least one positive fixture (the rule fires), one
negative fixture (the sanctioned idiom passes), and a pragma-suppressed
variant.  Fixtures are linted as in-memory source via
:func:`repro.check.lint.lint_source`.
"""

import textwrap

from repro.check.lint import lint_source

HOT_PATH = "src/repro/nn/fixture.py"
COLD_PATH = "src/repro/core/fixture.py"


def run(source, path=HOT_PATH, profile="library"):
    return lint_source(textwrap.dedent(source), path, profile)


def rules(found):
    return [f.rule for f in found]


class TestRC001Determinism:
    def test_global_numpy_draw_fires(self):
        found = run("""
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """)
        assert rules(found) == ["RC001"]
        assert "numpy.random.rand" in found[0].message
        assert found[0].scope == "sample"

    def test_stdlib_random_fires(self):
        found = run("""
            import random

            def pick(items):
                return random.choice(items)
            """)
        assert rules(found) == ["RC001"]

    def test_wall_clock_fires_in_library(self):
        found = run("""
            import time

            def stamp():
                return time.time()
            """)
        assert rules(found) == ["RC001"]
        assert "wall-clock" in found[0].message

    def test_seeded_generator_is_sanctioned(self):
        found = run("""
            import numpy as np

            def sample(n, seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(n)
            """)
        assert found == []

    def test_pragma_suppresses(self):
        found = run("""
            import numpy as np

            def sample(n):
                return np.random.rand(n)  # repro-check: disable=RC001
            """)
        assert found == []

    def test_scripts_profile_allows_wall_clock(self):
        found = run("""
            import time

            def stamp():
                return time.time()
            """, profile="scripts")
        assert found == []

    def test_scripts_profile_requires_module_seed(self):
        source = """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """
        assert rules(run(source, profile="scripts")) == ["RC001"]
        seeded = "import numpy as np\nnp.random.seed(0)\n" + \
            textwrap.dedent(source)
        assert lint_source(seeded, HOT_PATH, "scripts") == []


class TestRC002ForkSafety:
    LOCK_CLASS = """
        import threading

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
        """

    def test_lock_without_escape_hook_fires(self):
        found = run(self.LOCK_CLASS)
        assert rules(found) == ["RC002"]
        assert "Holder" in found[0].message
        assert found[0].scope == "Holder"

    def test_getstate_hook_passes(self):
        found = run("""
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    raise TypeError("Holder is not picklable")
            """)
        assert found == []

    def test_worker_reset_hook_passes(self):
        found = run("""
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.RLock()

                def spawn_sampler(self, worker_id=0):
                    self._lock = threading.RLock()
                    return self
            """)
        assert found == []

    def test_make_lock_counts_as_lock(self):
        found = run("""
            from repro.check.lockorder import make_lock

            class Holder:
                def __init__(self):
                    self._lock = make_lock("holder.lock")
            """)
        assert rules(found) == ["RC002"]

    def test_conditional_lock_detected(self):
        found = run("""
            import threading

            class Holder:
                def __init__(self, reentrant):
                    self._lock = (threading.RLock() if reentrant
                                  else threading.Lock())
            """)
        assert rules(found) == ["RC002"]

    def test_scripts_profile_skips(self):
        assert run(self.LOCK_CLASS, profile="scripts") == []


class TestRC003PoolDiscipline:
    def test_never_donated_fires(self):
        found = run("""
            def forward(x, pool):
                buf = pool.take(x.shape, x.dtype)
                y = x + 1
                return y
            """)
        assert rules(found) == ["RC003"]
        assert "never donated" in found[0].message

    def test_closure_only_donation_fires_as_no_grad_leak(self):
        found = run("""
            def forward(x, pool):
                buf = pool.take(x.shape, x.dtype)

                def backward(grad):
                    pool.put(buf)
                    return grad

                return backward
            """)
        assert rules(found) == ["RC003"]
        assert "nested closure" in found[0].message

    def test_body_donation_passes(self):
        found = run("""
            def forward(x, pool):
                buf = pool.take(x.shape, x.dtype)
                out = x * 2
                pool.put(buf)
                return out
            """)
        assert found == []

    def test_returned_buffer_passes(self):
        found = run("""
            def forward(x, pool):
                buf = pool.take(x.shape, x.dtype)
                return buf
            """)
        assert found == []

    def test_holder_alias_donation_passes(self):
        found = run("""
            from repro.nn.tensor import _donate_mask, _take_sign_mask

            def forward(x):
                mask = _take_sign_mask(x)
                state = [mask]
                _donate_mask(state)
                return x
            """)
        assert found == []

    def test_pragma_suppresses(self):
        found = run("""
            def forward(x, pool):
                buf = pool.take(x.shape, x.dtype)  # repro-check: disable=RC003
                return x
            """)
        assert found == []


class TestRC004DtypeDiscipline:
    def test_hard_dtype_in_hot_path_fires(self):
        found = run("""
            import numpy as np

            def forward(n):
                return np.zeros(n, dtype=np.float32)
            """)
        assert rules(found) == ["RC004"]
        assert "np.float32" in found[0].message

    def test_astype_in_hot_path_fires(self):
        found = run("""
            import numpy as np

            def forward(x):
                return x.astype(np.float64)
            """)
        assert rules(found) == ["RC004"]

    def test_string_dtype_fires(self):
        found = run("""
            import numpy as np

            def forward(n):
                return np.empty(n, dtype="float32")
            """)
        assert rules(found) == ["RC004"]

    def test_default_dtype_passes(self):
        found = run("""
            import numpy as np
            from repro.nn.tensor import get_default_dtype

            def forward(n):
                return np.zeros(n, dtype=get_default_dtype())
            """)
        assert found == []

    def test_cold_path_exempt(self):
        found = run("""
            import numpy as np

            def report(n):
                return np.zeros(n, dtype=np.float64)
            """, path=COLD_PATH)
        assert found == []

    def test_parity_scope_exempt(self):
        found = run("""
            import numpy as np

            def forward_parity(n):
                return np.zeros(n, dtype=np.float64)
            """)
        assert found == []


class TestRC005ErrorDiscipline:
    def test_anonymous_validation_raise_fires(self):
        found = run("""
            def fit(epochs):
                if epochs < 1:
                    raise ValueError("need a positive count")
            """)
        assert rules(found) == ["RC005"]
        assert "epochs" in found[0].message

    def test_fstring_naming_argument_passes(self):
        found = run("""
            def fit(epochs):
                if epochs < 1:
                    raise ValueError(f"epochs={epochs} must be >= 1")
            """)
        assert found == []

    def test_literal_naming_argument_passes(self):
        found = run("""
            def split(ratios):
                if len(ratios) != 3:
                    raise ValueError("ratios must have three terms")
            """)
        assert found == []

    def test_unguarded_raise_not_flagged(self):
        found = run("""
            def load(path):
                raise ValueError("unconditional, not argument validation")
            """)
        assert found == []

    def test_pragma_suppresses(self):
        found = run("""
            def fit(epochs):
                if epochs < 1:
                    raise ValueError("bad")  # repro-check: disable=RC005
            """)
        assert found == []


class TestRC006SilentFailureDiscipline:
    SERVE_PATH = "src/repro/serve/fixture.py"

    def test_swallowed_broad_except_fires(self):
        found = run("""
            def supervise():
                try:
                    poke()
                except Exception:
                    pass
            """, path=self.SERVE_PATH)
        assert rules(found) == ["RC006"]
        assert "swallows" in found[0].message

    def test_bare_except_fires(self):
        found = run("""
            def drain(readers):
                for reader in readers:
                    try:
                        reader.recv()
                    except:
                        continue
            """, path=self.SERVE_PATH)
        assert rules(found) == ["RC006"]
        assert "bare except" in found[0].message

    def test_broad_member_of_tuple_fires(self):
        found = run("""
            def supervise():
                try:
                    poke()
                except (OSError, BaseException):
                    pass
            """, path=self.SERVE_PATH)
        assert rules(found) == ["RC006"]

    def test_narrow_except_passes(self):
        found = run("""
            def wake(pipe):
                try:
                    pipe.send_bytes(b"w")
                except (OSError, ValueError):
                    pass
            """, path=self.SERVE_PATH)
        assert found == []

    def test_reraise_passes(self):
        found = run("""
            def supervise():
                try:
                    poke()
                except Exception:
                    raise
            """, path=self.SERVE_PATH)
        assert found == []

    def test_recording_to_state_passes(self):
        found = run("""
            def supervise(slot):
                try:
                    poke()
                except Exception as exc:
                    slot.last_error = str(exc)
            """, path=self.SERVE_PATH)
        assert found == []

    def test_del_scope_exempt(self):
        found = run("""
            class Pool:
                def __del__(self):
                    try:
                        self.close()
                    except Exception:
                        pass
            """, path=self.SERVE_PATH)
        assert found == []

    def test_outside_serving_layer_passes(self):
        found = run("""
            def tolerant():
                try:
                    poke()
                except Exception:
                    pass
            """, path=COLD_PATH)
        assert found == []

    def test_scripts_profile_exempt(self):
        found = run("""
            def tolerant():
                try:
                    poke()
                except Exception:
                    pass
            """, path=self.SERVE_PATH, profile="scripts")
        assert found == []

    def test_pragma_on_except_line_suppresses(self):
        found = run("""
            def supervise():
                try:
                    poke()
                except Exception:  # repro-check: disable=RC006
                    pass
            """, path=self.SERVE_PATH)
        assert found == []

    def test_pragma_on_body_line_suppresses(self):
        found = run("""
            def supervise():
                try:
                    poke()
                except Exception:
                    pass  # repro-check: disable=RC006 -- best-effort wake
            """, path=self.SERVE_PATH)
        assert found == []


class TestRC007ClockDiscipline:
    def test_raw_monotonic_read_fires(self):
        found = run("""
            import time

            def elapsed(start):
                return time.monotonic() - start
            """)
        assert rules(found) == ["RC007"]
        assert "time.monotonic" in found[0].message
        assert "repro.obs.clock" in found[0].message

    def test_perf_counter_and_ns_variants_fire(self):
        found = run("""
            import time

            def stamp():
                return (time.perf_counter(), time.perf_counter_ns(),
                        time.monotonic_ns())
            """)
        assert rules(found) == ["RC007", "RC007", "RC007"]

    def test_aliased_import_fires(self):
        found = run("""
            from time import perf_counter as tick

            def stamp():
                return tick()
            """)
        assert rules(found) == ["RC007"]

    def test_obs_clock_route_is_sanctioned(self):
        found = run("""
            from repro.obs import clock as _obs_clock

            def elapsed(start):
                return _obs_clock.monotonic() - start
            """)
        assert found == []

    def test_sleep_is_not_a_clock_read(self):
        found = run("""
            import time

            def backoff():
                time.sleep(0.1)
            """)
        assert found == []

    def test_obs_package_is_exempt(self):
        found = run("""
            import time

            def monotonic():
                return time.monotonic()
            """, path="src/repro/obs/clock.py")
        assert found == []

    def test_pragma_suppresses(self):
        found = run("""
            import time

            def stamp():
                return time.monotonic()  # repro-check: disable=RC007
            """)
        assert found == []

    def test_scripts_profile_is_exempt(self):
        found = run("""
            import time

            def stamp():
                return time.monotonic()
            """, profile="scripts")
        assert found == []
