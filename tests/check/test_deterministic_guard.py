"""Deterministic guard: hidden global-RNG draws fail seeded paths."""

import numpy as np
import pytest

from repro.api import Synthesizer
from repro.check import (
    NonDeterminismError, deterministic_guard, deterministic_scope,
    disable_sanitizers, sanitized, sanitizers_enabled,
)
from repro.datasets.schema import Table

from tests.conftest import make_mixed_table

_PRESET = sanitizers_enabled()
skip_when_preset = pytest.mark.skipif(
    _PRESET, reason="asserts the sanitizers-off default behaviour")


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    if not _PRESET:
        disable_sanitizers()


def test_global_draw_raises_inside_guard():
    with deterministic_guard():
        with pytest.raises(NonDeterminismError) as err:
            np.random.rand(3)
    assert "np.random.rand" in str(err.value)


def test_seeding_the_global_rng_also_raises():
    with deterministic_guard():
        with pytest.raises(NonDeterminismError):
            np.random.seed(0)


def test_seeded_generators_are_sanctioned():
    with deterministic_guard():
        rng = np.random.default_rng(7)
        values = rng.standard_normal(4)
    assert values.shape == (4,)


def test_guard_restores_numpy_on_exit():
    original = np.random.rand
    with deterministic_guard():
        assert np.random.rand is not original
    assert np.random.rand is original
    assert np.random.rand(2).shape == (2,)


def test_guard_is_reentrant():
    with deterministic_guard():
        with deterministic_guard():
            with pytest.raises(NonDeterminismError):
                np.random.normal()
        # still guarded until the outermost scope exits
        with pytest.raises(NonDeterminismError):
            np.random.normal()
    assert np.isfinite(np.random.normal())


@skip_when_preset
def test_scope_is_noop_when_sanitizers_disabled():
    with deterministic_scope():
        assert np.random.rand(1).shape == (1,)


class _Resampler(Synthesizer):
    """Toy family: samples rows of the fitted table via the given rng."""

    method = "resampler-test"

    def _fit(self, table, callbacks, conditions=None):
        self._table = table

    def _sample_chunk(self, m, rng, conditions=None):
        idx = rng.integers(0, len(self._table), m)
        return Table(self._table.schema,
                     {name: self._table.column(name)[idx]
                      for name in self._table.schema.names})

    def _state(self):
        return {}, {}

    def _load_state(self, state, arrays):
        raise NotImplementedError


class _LeakyResampler(_Resampler):
    """Planted violation: draws from NumPy's hidden global state."""

    method = "leaky-resampler-test"

    def _sample_chunk(self, m, rng, conditions=None):
        np.random.rand(m)  # repro-check: disable=RC001 -- planted on purpose
        return super()._sample_chunk(m, rng, conditions=conditions)


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=120, seed=9)


def test_clean_family_samples_under_sanitizers(table):
    synth = _Resampler(seed=0).fit(table)
    with sanitized():
        a = synth.sample(30, seed=4)
        b = synth.sample(30, seed=4)
    for name in table.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def test_planted_global_draw_fails_seeded_sample(table):
    synth = _LeakyResampler(seed=0).fit(table)
    if not sanitizers_enabled():
        # Undetected without sanitizers — exactly the bug class at stake.
        assert len(synth.sample(10, seed=3)) == 10
    with sanitized():
        with pytest.raises(NonDeterminismError):
            synth.sample(10, seed=3)


def test_planted_global_draw_fails_unseeded_stream(table):
    synth = _LeakyResampler(seed=0).fit(table)
    with sanitized():
        with pytest.raises(NonDeterminismError):
            list(synth.sample_iter(10, batch=5))
