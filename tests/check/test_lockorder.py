"""Lock-order recording: inversions raise on first inconsistency."""

import threading

import pytest

from repro.check import (
    LockOrderError, disable_sanitizers, lock_graph_edges, reset_lock_graph,
    sanitized, sanitizers_enabled,
)
from repro.check.lockorder import make_condition, make_lock

_PRESET = sanitizers_enabled()
skip_when_preset = pytest.mark.skipif(
    _PRESET, reason="asserts the sanitizers-off default behaviour")


@pytest.fixture(autouse=True)
def _clean_state():
    reset_lock_graph()
    yield
    reset_lock_graph()
    if not _PRESET:
        disable_sanitizers()


@skip_when_preset
def test_disabled_returns_plain_primitives():
    lock = make_lock("plain")
    assert isinstance(lock, type(threading.Lock()))
    cond = make_condition("plain.cond")
    assert isinstance(cond, threading.Condition)


def test_consistent_order_is_fine():
    with sanitized():
        a, b = make_lock("order.a"), make_lock("order.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert "order.b" in lock_graph_edges()["order.a"]


def test_inversion_raises_with_the_recorded_path():
    with sanitized():
        a, b = make_lock("inv.a"), make_lock("inv.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError) as err:
                with a:
                    pass
    message = str(err.value)
    assert "inv.a" in message and "inv.b" in message
    assert "inversion" in message


def test_transitive_inversion_detected():
    with sanitized():
        a, b, c = (make_lock("tri.a"), make_lock("tri.b"),
                   make_lock("tri.c"))
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError):
                with a:  # closes the cycle a -> b -> c -> a
                    pass


def test_same_thread_reacquisition_raises():
    with sanitized():
        a = make_lock("re.a")
        with a:
            with pytest.raises(LockOrderError) as err:
                a.acquire()
    assert "guaranteed deadlock" in str(err.value)


def test_reset_forgets_recorded_edges():
    with sanitized():
        a, b = make_lock("reset.a"), make_lock("reset.b")
        with a:
            with b:
                pass
        reset_lock_graph()
        with b:
            with a:  # no longer an inversion after reset
                pass
        assert "reset.a" in lock_graph_edges()["reset.b"]


def test_locks_are_not_picklable_under_recording():
    import pickle

    with sanitized():
        lock = make_lock("pickle.a")
        with pytest.raises(TypeError):
            pickle.dumps(lock)


def test_condition_wait_notify_across_threads():
    with sanitized():
        cond = make_condition("cv.queue")
        ready = []

        def producer():
            with cond:
                ready.append(1)
                cond.notify_all()

        with cond:
            worker = threading.Thread(target=producer)
            worker.start()
            ok = cond.wait_for(lambda: ready, timeout=5.0)
        worker.join(timeout=5.0)
        assert ok and ready == [1]


def test_serve_stack_lock_roles_are_acyclic():
    """Smoke: nested use of the serve-layer lock roles records cleanly.

    The full serve stack runs under these recorders in the sanitized CI
    job (``REPRO_SANITIZE=1`` over ``tests/serve``); this asserts the
    role-graph machinery itself handles the serve nesting order.
    """
    with sanitized():
        outer = make_lock("service.pools")
        inner = make_lock("store.cache")
        with outer:
            with inner:
                pass
        edges = lock_graph_edges()
        assert "store.cache" in edges["service.pools"]
