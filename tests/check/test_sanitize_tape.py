"""NaN/Inf tape sanitizer: the first corrupted node is reported."""

import numpy as np
import pytest

from repro.check import (
    TapeCorruptionError, disable_sanitizers, sanitized, sanitizers_enabled,
)
from repro.nn.tensor import Tensor


#: True when the whole run is sanitized (REPRO_SANITIZE=1 CI job);
#: tests asserting the sanitizers-off default skip there.
_PRESET = sanitizers_enabled()
skip_when_preset = pytest.mark.skipif(
    _PRESET, reason="asserts the sanitizers-off default behaviour")


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    if not _PRESET:
        disable_sanitizers()


def test_forward_nan_raises_at_the_producing_node():
    with sanitized():
        with np.errstate(invalid="ignore"):
            with pytest.raises(TapeCorruptionError) as err:
                Tensor(np.array([-1.0])).log()
    message = str(err.value)
    assert "Tensor.log" in message
    assert "NaN" in message
    assert "output" in message


def test_forward_inf_raises():
    with sanitized():
        with np.errstate(divide="ignore"):
            with pytest.raises(TapeCorruptionError) as err:
                Tensor(np.array([0.0])).log()
    assert "Inf" in str(err.value)


def test_backward_nan_gradient_raises():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x.log()
    with sanitized():
        with pytest.raises(TapeCorruptionError) as err:
            y.backward(np.array([np.nan]))
    assert "incoming gradient" in str(err.value)


@skip_when_preset
def test_disabled_by_default_nan_flows_through():
    assert not sanitizers_enabled()
    with np.errstate(invalid="ignore"):
        out = Tensor(np.array([-1.0])).log()
    assert np.isnan(out.data).all()


def test_finite_computation_unaffected():
    with sanitized():
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
    np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])


def test_integer_and_bool_arrays_are_ignored():
    with sanitized():
        a = Tensor(np.array([1.0, -1.0]))
        mask = a.data > 0  # plain ndarray; only tape nodes are checked
        out = a.relu()
    assert mask.dtype == np.bool_
    assert np.isfinite(out.data).all()


@skip_when_preset
def test_uninstall_restores_original_make():
    original = Tensor._make
    with sanitized():
        assert Tensor._make is not original
    assert Tensor._make is original
