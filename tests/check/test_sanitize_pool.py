"""ArrayPool lifetime tracker: double donation, foreign buffers, leaks."""

import numpy as np
import pytest

from repro.check import (
    PoolDisciplineError, PoolLeakError, disable_sanitizers,
    pool_leak_scope, sanitized, sanitizers_enabled,
)
from repro.nn.tensor import ArrayPool, Tensor, no_grad

_PRESET = sanitizers_enabled()
skip_when_preset = pytest.mark.skipif(
    _PRESET, reason="asserts the sanitizers-off default behaviour")


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    if not _PRESET:
        disable_sanitizers()


def test_double_donation_raises():
    pool = ArrayPool()
    with sanitized():
        buf = pool.take((4,), np.float64)
        pool.put(buf)
        with pytest.raises(PoolDisciplineError) as err:
            pool.put(buf)
    assert "double donation" in str(err.value)


def test_foreign_buffer_raises():
    pool = ArrayPool()
    with sanitized():
        with pytest.raises(PoolDisciplineError) as err:
            pool.put(np.empty(4))
    assert "foreign buffer" in str(err.value)


def test_buffer_from_another_pool_is_foreign():
    a, b = ArrayPool(), ArrayPool()
    with sanitized():
        buf = a.take((3,), np.float64)
        with pytest.raises(PoolDisciplineError):
            b.put(buf)
        a.put(buf)


def test_retake_then_donate_is_balanced():
    pool = ArrayPool()
    with sanitized():
        buf = pool.take((4,), np.float64)
        pool.put(buf)
        again = pool.take((4,), np.float64)
        assert again is buf  # recycled, now outstanding again
        pool.put(again)


def test_leak_scope_reports_undonated_buffer():
    pool = ArrayPool()
    with sanitized():
        with pytest.raises(PoolLeakError) as err:
            with pool_leak_scope(pool):
                leaked = pool.take((8,), np.float64)
        assert "never donated" in str(err.value)
    del leaked


def test_leak_scope_passes_when_balanced():
    pool = ArrayPool()
    with sanitized():
        with pool_leak_scope(pool):
            buf = pool.take((8,), np.float64)
            pool.put(buf)


@skip_when_preset
def test_leak_scope_standalone_installs_temporary_tracker():
    pool = ArrayPool()
    assert ArrayPool._tracker is None
    with pytest.raises(PoolLeakError):
        with pool_leak_scope(pool):
            held = pool.take((2,), np.float64)
    assert ArrayPool._tracker is None
    del held


def test_leak_scope_ignores_other_pools():
    watched, other = ArrayPool(), ArrayPool()
    with sanitized():
        outside = None
        with pool_leak_scope(watched):
            outside = other.take((2,), np.float64)  # not watched: no leak
        other.put(outside)


def test_relu_no_grad_path_is_balanced():
    with sanitized():
        with pool_leak_scope():
            with no_grad():
                Tensor(np.array([1.0, -2.0, 3.0])).relu()


def test_relu_train_step_is_balanced():
    with sanitized():
        with pool_leak_scope():
            x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
            x.relu().sum().backward()


def test_repeated_backward_does_not_double_donate():
    x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
    with sanitized():
        loss = x.relu().sum()
        loss.backward()       # donates the pooled sign mask
        x.grad = None
        loss.backward()       # recomputes the mask privately
    np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])


def test_conv_fused_repeated_backward_is_clean():
    from repro.nn.conv import Conv2d

    conv = Conv2d(2, 3, kernel_size=3)
    x = Tensor(np.random.default_rng(1).standard_normal((2, 2, 6, 6)),
               requires_grad=True)
    with sanitized():
        loss = conv(x).sum()
        loss.backward()
        x.grad = None
        loss.backward()   # pooled unfold scratch must not be re-donated
    assert x.grad is not None
