"""GANSynthesizer facade: phases I-III, snapshots, conditional sampling."""

import numpy as np
import pytest

from repro.core.design_space import DesignConfig
from repro.errors import TrainingError
from repro.gan import GANSynthesizer, duplicate_rate, is_collapsed

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=300, seed=2)


def quick(config, **kwargs):
    return GANSynthesizer(config, epochs=2, iterations_per_epoch=4,
                          seed=0, **kwargs)


class TestFitSample:
    def test_sample_preserves_schema(self, table):
        synth = quick(DesignConfig()).fit(table)
        fake = synth.sample(50)
        assert fake.schema.names == table.schema.names
        assert len(fake) == 50

    def test_sample_values_in_domain(self, table):
        synth = quick(DesignConfig()).fit(table)
        fake = synth.sample(100)
        for attr in table.schema:
            col = fake.column(attr.name)
            if attr.is_categorical:
                assert col.min() >= 0
                assert col.max() < attr.domain_size

    def test_numeric_within_fitted_range_simple_norm(self, table):
        synth = quick(DesignConfig(
            numerical_normalization="simple")).fit(table)
        fake = synth.sample(100)
        for name in ("age", "income"):
            real = table.column(name)
            col = fake.column(name)
            assert col.min() >= real.min() - 1e-6
            assert col.max() <= real.max() + 1e-6

    def test_unfitted_sample_raises(self):
        with pytest.raises(TrainingError):
            quick(DesignConfig()).sample(10)

    def test_lstm_pipeline(self, table):
        synth = quick(DesignConfig(generator="lstm")).fit(table)
        assert len(synth.sample(20)) == 20

    def test_cnn_pipeline(self, table):
        config = DesignConfig(generator="cnn",
                              categorical_encoding="ordinal",
                              numerical_normalization="simple")
        synth = quick(config).fit(table)
        fake = synth.sample(20)
        assert fake.schema.names == table.schema.names


class TestSnapshots:
    def test_one_snapshot_per_epoch(self, table):
        synth = quick(DesignConfig()).fit(table)
        assert len(synth.snapshots) == 2

    def test_use_snapshot_changes_generator(self, table):
        synth = quick(DesignConfig()).fit(table)
        synth.use_snapshot(0)
        state0 = synth.generator.state_dict()
        synth.use_snapshot(1)
        state1 = synth.generator.state_dict()
        assert any(not np.allclose(state0[k], state1[k]) for k in state0)

    def test_active_snapshot_tracked(self, table):
        synth = quick(DesignConfig()).fit(table)
        assert synth.active_snapshot == 1
        synth.use_snapshot(0)
        assert synth.active_snapshot == 0

    def test_bad_snapshot_index(self, table):
        synth = quick(DesignConfig()).fit(table)
        with pytest.raises(IndexError):
            synth.use_snapshot(5)


class TestConditional:
    def test_conditional_label_distribution_matches_real(self, table):
        config = DesignConfig(training="ctrain")
        synth = quick(config).fit(table)
        fake = synth.sample(400)
        real_rate = table.label_codes.mean()
        fake_rate = fake.label_codes.mean()
        assert abs(real_rate - fake_rate) < 0.15

    def test_conditional_requires_label(self, table):
        config = DesignConfig(training="ctrain")
        with pytest.raises(TrainingError):
            quick(config).fit(table.drop_label())

    def test_cgan_v_variant(self, table):
        config = DesignConfig(training="vtrain", conditional=True)
        synth = quick(config).fit(table)
        assert len(synth.sample(30)) == 30


class TestReproducibility:
    def test_same_seed_same_output(self, table):
        a = quick(DesignConfig()).fit(table).sample(20)
        b = quick(DesignConfig()).fit(table).sample(20)
        for name in table.schema.names:
            np.testing.assert_allclose(a.column(name).astype(float),
                                       b.column(name).astype(float))


class TestModeCollapseMetrics:
    def test_duplicate_rate_on_duplicates(self):
        samples = np.ones((100, 5))
        assert duplicate_rate(samples) == pytest.approx(0.99)

    def test_duplicate_rate_on_unique(self, rng):
        samples = rng.normal(size=(100, 5))
        assert duplicate_rate(samples) == 0.0

    def test_is_collapsed_detects(self, rng):
        collapsed = np.tile(rng.normal(size=(1, 4)), (200, 1))
        healthy = rng.normal(size=(200, 4))
        assert is_collapsed(collapsed)
        assert not is_collapsed(healthy)


class TestKeepSnapshots:
    def test_keep_snapshots_false_stores_only_final(self, table):
        synth = GANSynthesizer(config=DesignConfig(batch_size=32), epochs=3,
                               iterations_per_epoch=2, keep_snapshots=False,
                               seed=0)
        synth.fit(table)
        snaps = synth.snapshots
        assert [s is not None for s in snaps] == [False, False, True]
        synth.use_snapshot(2)  # final snapshot always available
        with pytest.raises(TrainingError):
            synth.use_snapshot(0)

    def test_keep_snapshots_round_trips_through_save(self, table, tmp_path):
        synth = GANSynthesizer(config=DesignConfig(batch_size=32), epochs=2,
                               iterations_per_epoch=2, keep_snapshots=False,
                               seed=0)
        synth.fit(table)
        synth.save(tmp_path / "model")
        loaded = GANSynthesizer.load(tmp_path / "model")
        assert loaded.keep_snapshots is False
        assert len(loaded.sample(20)) == 20
