"""Generators and discriminators: shapes, heads, conditioning."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gan import (
    CNNDiscriminator, CNNGenerator, LSTMDiscriminator, LSTMGenerator,
    MLPDiscriminator, MLPGenerator,
)
from repro.nn import Tensor
from repro.transform import RecordTransformer

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def blocks():
    table = make_mixed_table(n=200, seed=0)
    rt = RecordTransformer("onehot", "gmm",
                           rng=np.random.default_rng(0)).fit(table)
    return rt.blocks, rt.output_dim


class TestMLPGenerator:
    def test_output_dim_matches_blocks(self, blocks, rng):
        specs, dim = blocks
        gen = MLPGenerator(z_dim=8, blocks=specs, rng=rng)
        out = gen(Tensor(rng.standard_normal((16, 8))))
        assert out.shape == (16, dim)

    def test_softmax_blocks_are_distributions(self, blocks, rng):
        specs, _ = blocks
        gen = MLPGenerator(z_dim=8, blocks=specs, rng=rng)
        out = gen(Tensor(rng.standard_normal((16, 8)))).data
        for block in specs:
            if block.head == "softmax":
                np.testing.assert_allclose(
                    out[:, block.slice].sum(axis=1), 1.0)

    def test_tanh_softmax_block_structure(self, blocks, rng):
        specs, _ = blocks
        gen = MLPGenerator(z_dim=8, blocks=specs, rng=rng)
        out = gen(Tensor(rng.standard_normal((8, 8)))).data
        for block in specs:
            if block.head == "tanh+softmax":
                value = out[:, block.start]
                modes = out[:, block.start + 1:block.stop]
                assert (np.abs(value) <= 1).all()
                np.testing.assert_allclose(modes.sum(axis=1), 1.0)

    def test_conditional_input(self, blocks, rng):
        specs, dim = blocks
        gen = MLPGenerator(z_dim=8, blocks=specs, cond_dim=2, rng=rng)
        cond = np.zeros((4, 2))
        cond[:, 0] = 1.0
        out = gen(Tensor(rng.standard_normal((4, 8))), Tensor(cond))
        assert out.shape == (4, dim)

    def test_condition_changes_output(self, blocks, rng):
        specs, _ = blocks
        gen = MLPGenerator(z_dim=8, blocks=specs, cond_dim=2, rng=rng)
        gen.eval()
        z = Tensor(rng.standard_normal((4, 8)))
        c0 = np.tile([1.0, 0.0], (4, 1))
        c1 = np.tile([0.0, 1.0], (4, 1))
        assert not np.allclose(gen(z, Tensor(c0)).data,
                               gen(z, Tensor(c1)).data)


class TestLSTMGenerator:
    def test_output_and_timesteps(self, blocks, rng):
        specs, dim = blocks
        gen = LSTMGenerator(z_dim=8, blocks=specs, rng=rng)
        # GMM blocks take two timesteps, others one.
        expected_steps = sum(2 if b.head == "tanh+softmax" else 1
                             for b in specs)
        assert gen.n_timesteps == expected_steps
        out = gen(Tensor(rng.standard_normal((6, 8))))
        assert out.shape == (6, dim)

    def test_heads_respected(self, blocks, rng):
        specs, _ = blocks
        gen = LSTMGenerator(z_dim=8, blocks=specs, rng=rng)
        out = gen(Tensor(rng.standard_normal((5, 8)))).data
        for block in specs:
            if block.head == "softmax":
                np.testing.assert_allclose(out[:, block.slice].sum(axis=1),
                                           1.0)

    def test_conditional(self, blocks, rng):
        specs, dim = blocks
        gen = LSTMGenerator(z_dim=8, blocks=specs, cond_dim=3, rng=rng)
        out = gen(Tensor(rng.standard_normal((4, 8))),
                  Tensor(np.eye(3)[[0, 1, 2, 0]]))
        assert out.shape == (4, dim)


class TestDiscriminators:
    def test_mlp_logit_shape(self, blocks, rng):
        specs, dim = blocks
        disc = MLPDiscriminator(dim, rng=rng)
        out = disc(Tensor(rng.standard_normal((10, dim))))
        assert out.shape == (10, 1)

    def test_simplified_is_smaller(self, blocks, rng):
        specs, dim = blocks
        full = MLPDiscriminator(dim, hidden_dim=128, n_layers=2, rng=rng)
        simple = MLPDiscriminator(dim, hidden_dim=128, n_layers=2,
                                  simplified=True, rng=rng)
        assert simple.num_parameters() < full.num_parameters() / 2

    def test_lstm_discriminator(self, blocks, rng):
        specs, dim = blocks
        disc = LSTMDiscriminator(specs, rng=rng)
        out = disc(Tensor(rng.standard_normal((7, dim))))
        assert out.shape == (7, 1)

    def test_lstm_discriminator_conditional(self, blocks, rng):
        specs, dim = blocks
        disc = LSTMDiscriminator(specs, cond_dim=2, rng=rng)
        out = disc(Tensor(rng.standard_normal((4, dim))),
                   Tensor(np.eye(2)[[0, 1, 0, 1]]))
        assert out.shape == (4, 1)


class TestCNNModels:
    def test_generator_emits_matrix(self, rng):
        gen = CNNGenerator(z_dim=16, side=8, rng=rng)
        out = gen(Tensor(rng.standard_normal((5, 16))))
        assert out.shape == (5, 1, 8, 8)
        assert (np.abs(out.data) <= 1.0).all()

    def test_discriminator_logit(self, rng):
        disc = CNNDiscriminator(side=8, rng=rng)
        out = disc(Tensor(rng.standard_normal((5, 1, 8, 8))))
        assert out.shape == (5, 1)

    def test_side_must_be_divisible_by_four(self, rng):
        with pytest.raises(ConfigError):
            CNNGenerator(z_dim=8, side=6, rng=rng)

    def test_conditional_rejected(self, rng):
        gen = CNNGenerator(z_dim=8, side=8, rng=rng)
        with pytest.raises(ConfigError):
            gen(Tensor(rng.standard_normal((2, 8))),
                Tensor(np.ones((2, 2))))

    def test_simplified_discriminator_smaller(self, rng):
        full = CNNDiscriminator(side=8, rng=rng)
        simple = CNNDiscriminator(side=8, simplified=True, rng=rng)
        assert simple.num_parameters() < full.num_parameters()
