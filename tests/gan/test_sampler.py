"""Minibatch samplers."""

import numpy as np
import pytest

from repro.gan import LabelAwareSampler, RandomSampler


@pytest.fixture
def data(rng):
    X = rng.normal(size=(100, 4))
    y = np.array([0] * 90 + [1] * 10)
    return X, y


class TestRandomSampler:
    def test_batch_shape(self, data, rng):
        X, y = data
        sampler = RandomSampler(X, y, rng=rng)
        batch, labels = sampler.batch(16)
        assert batch.shape == (16, 4)
        assert labels.shape == (16,)

    def test_no_labels(self, data, rng):
        X, _ = data
        batch, labels = RandomSampler(X, rng=rng).batch(8)
        assert labels is None

    def test_misaligned_labels_raise(self, data, rng):
        X, y = data
        with pytest.raises(ValueError):
            RandomSampler(X, y[:5], rng=rng)

    def test_majority_dominates_random_batches(self, data, rng):
        """Uniform sampling under-serves the minority label (paper §5.3)."""
        X, y = data
        sampler = RandomSampler(X, y, rng=rng)
        rates = [labels.mean() for _, labels in
                 (sampler.batch(32) for _ in range(50))]
        assert np.mean(rates) < 0.25


class TestLabelAwareSampler:
    def test_batches_are_pure_label(self, data, rng):
        X, y = data
        sampler = LabelAwareSampler(X, y, rng=rng)
        for label in sampler.label_domain:
            batch = sampler.batch_for_label(label, 16)
            assert batch.shape == (16, 4)
            # Rows must come from that label's pool.
            pool = X[y == label]
            for row in batch[:4]:
                assert (np.abs(pool - row).sum(axis=1) < 1e-12).any()

    def test_minority_label_gets_full_batches(self, data, rng):
        X, y = data
        sampler = LabelAwareSampler(X, y, rng=rng)
        batch = sampler.batch_for_label(1, 32)  # only 10 minority rows
        assert batch.shape == (32, 4)

    def test_label_domain_sorted(self, data, rng):
        X, y = data
        assert LabelAwareSampler(X, y, rng=rng).label_domain == [0, 1]

    def test_unknown_label_raises(self, data, rng):
        X, y = data
        with pytest.raises(KeyError):
            LabelAwareSampler(X, y, rng=rng).batch_for_label(7, 4)

    def test_label_frequencies(self, data, rng):
        X, y = data
        freq = LabelAwareSampler(X, y, rng=rng).label_frequencies()
        np.testing.assert_allclose(freq, [0.9, 0.1])

    def test_requires_labels(self, data, rng):
        X, _ = data
        with pytest.raises(ValueError):
            LabelAwareSampler(X, None, rng=rng)
