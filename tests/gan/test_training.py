"""Training algorithms: VTrain, WTrain, CTrain, DPTrain."""

import numpy as np
import pytest

from repro.core.design_space import DesignConfig
from repro.errors import TrainingError
from repro.gan import (
    CTrainTrainer, DPTrainer, MLPDiscriminator, MLPGenerator,
    VanillaTrainer, WGANTrainer, make_trainer,
)
from repro.transform import RecordTransformer

from tests.conftest import make_mixed_table


@pytest.fixture
def setup():
    table = make_mixed_table(n=200, seed=1)
    rng = np.random.default_rng(0)
    rt = RecordTransformer("onehot", "simple", rng=rng).fit(table)
    data = rt.transform(table)
    labels = table.label_codes
    return table, rt, data, labels


def build(rt, config, rng, cond_dim=0):
    gen = MLPGenerator(config.z_dim, rt.blocks,
                       hidden_dim=config.hidden_dim, cond_dim=cond_dim,
                       rng=rng)
    disc = MLPDiscriminator(rt.output_dim, hidden_dim=config.hidden_dim,
                            cond_dim=cond_dim, rng=rng)
    return gen, disc


class TestVanillaTrainer:
    def test_runs_and_snapshots(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=32)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        trainer = VanillaTrainer(gen, disc, config, rng)
        result = trainer.train(data, labels, 2, epochs=3,
                               iterations_per_epoch=4)
        assert len(result.epochs) == 3
        assert len(result.g_losses) == 12
        assert all(np.isfinite(result.g_losses))

    def test_snapshots_differ_across_epochs(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=32)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        result = VanillaTrainer(gen, disc, config, rng).train(
            data, labels, 2, epochs=2, iterations_per_epoch=5)
        first = result.snapshots[0]
        second = result.snapshots[1]
        changed = any(not np.allclose(first[k], second[k]) for k in first)
        assert changed

    def test_kl_term_differentiable_and_positive(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=32)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        trainer = VanillaTrainer(gen, disc, config, rng)
        from repro.nn import Tensor
        fake = gen(Tensor(rng.standard_normal((32, config.z_dim))))
        kl = trainer.kl_term(data[:32], fake)
        assert kl is not None
        assert float(kl.data) >= -1e-9
        kl.backward()  # must propagate into generator params
        assert any(p.grad is not None for p in gen.parameters())

    def test_empty_data_raises(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig()
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        with pytest.raises(TrainingError):
            VanillaTrainer(gen, disc, config, rng).train(
                data[:0], None, 0, epochs=1, iterations_per_epoch=1)

    def test_epoch_callback_invoked(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=16)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        seen = []
        VanillaTrainer(gen, disc, config, rng).train(
            data, None, 0, epochs=2, iterations_per_epoch=2,
            epoch_callback=lambda rec: seen.append(rec.epoch))
        assert seen == [0, 1]


class TestWGANTrainer:
    def test_weight_clipping_enforced(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(training="wtrain", batch_size=32,
                              weight_clip=0.01, d_steps=2)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        WGANTrainer(gen, disc, config, rng).train(
            data, None, 0, epochs=1, iterations_per_epoch=3)
        for param in disc.parameters():
            assert np.abs(param.data).max() <= 0.01 + 1e-12

    def test_multiple_critic_steps(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(training="wtrain", batch_size=16, d_steps=3)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        result = WGANTrainer(gen, disc, config, rng).train(
            data, None, 0, epochs=1, iterations_per_epoch=2)
        assert len(result.epochs) == 1


class TestCTrain:
    def test_requires_labels(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(training="ctrain", batch_size=16)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng, cond_dim=2)
        with pytest.raises(TrainingError):
            CTrainTrainer(gen, disc, config, rng).train(
                data, None, 2, epochs=1, iterations_per_epoch=1)

    def test_trains_per_label(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(training="ctrain", batch_size=16)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng, cond_dim=2)
        result = CTrainTrainer(gen, disc, config, rng).train(
            data, labels, 2, epochs=2, iterations_per_epoch=2)
        assert len(result.epochs) == 2


class TestDPTrain:
    def test_runs_with_noise(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(training="dptrain", batch_size=32,
                              dp_noise_multiplier=2.0, dp_grad_bound=1.0)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        result = DPTrainer(gen, disc, config, rng).train(
            data, None, 0, epochs=1, iterations_per_epoch=3)
        assert all(np.isfinite(result.d_losses))

    def test_critic_gradients_bounded_before_noise(self, setup):
        """The clip must cap the critic grad norm at dp_grad_bound."""
        from repro.nn import clip_gradients, global_gradient_norm

        table, rt, data, labels = setup
        config = DesignConfig(training="dptrain", dp_grad_bound=0.5,
                              dp_noise_multiplier=0.0, batch_size=32)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng)
        trainer = DPTrainer(gen, disc, config, rng)
        trainer.prepare(data, None, 0)
        real, _ = trainer.sampler.batch(32)
        from repro.nn import Tensor
        trainer.opt_d.zero_grad()
        loss = (trainer.discriminator(Tensor(real)).mean()
                - trainer.discriminator(
                    trainer.generator(trainer.sample_noise(32)).detach()
                ).mean())
        loss.backward()
        clip_gradients(disc.parameters(), config.dp_grad_bound)
        assert global_gradient_norm(disc.parameters()) <= 0.5 + 1e-9


class TestMakeTrainer:
    @pytest.mark.parametrize("training,expected", [
        ("vtrain", VanillaTrainer),
        ("wtrain", WGANTrainer),
        ("ctrain", CTrainTrainer),
        ("dptrain", DPTrainer),
    ])
    def test_dispatch(self, setup, training, expected):
        table, rt, data, labels = setup
        config = DesignConfig(training=training)
        rng = np.random.default_rng(0)
        cond = 2 if config.is_conditional else 0
        gen, disc = build(rt, config, rng, cond_dim=cond)
        trainer = make_trainer(config, gen, disc, rng)
        assert type(trainer) is expected

    def test_vtrain_conditional_is_cgan_v(self, setup):
        from repro.gan import ConditionalVanillaTrainer

        table, rt, data, labels = setup
        config = DesignConfig(training="vtrain", conditional=True)
        rng = np.random.default_rng(0)
        gen, disc = build(rt, config, rng, cond_dim=2)
        trainer = make_trainer(config, gen, disc, rng)
        assert type(trainer) is ConditionalVanillaTrainer


class TestLazySnapshots:
    def test_default_snapshots_every_epoch(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=32)
        rng = np.random.default_rng(0)
        trainer = VanillaTrainer(*build(rt, config, rng), config, rng)
        result = trainer.train(data, labels, 2, epochs=3,
                               iterations_per_epoch=2)
        assert all(e.snapshot is not None for e in result.epochs)

    def test_empty_snapshot_epochs_keeps_only_final(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=32)
        rng = np.random.default_rng(0)
        trainer = VanillaTrainer(*build(rt, config, rng), config, rng)
        result = trainer.train(data, labels, 2, epochs=4,
                               iterations_per_epoch=2, snapshot_epochs=())
        assert [e.snapshot is not None for e in result.epochs] == [
            False, False, False, True]

    def test_explicit_snapshot_epochs(self, setup):
        table, rt, data, labels = setup
        config = DesignConfig(batch_size=32)
        rng = np.random.default_rng(0)
        trainer = VanillaTrainer(*build(rt, config, rng), config, rng)
        result = trainer.train(data, labels, 2, epochs=4,
                               iterations_per_epoch=2, snapshot_epochs=(1,))
        assert [e.snapshot is not None for e in result.epochs] == [
            False, True, False, True]


class TestEngineDtypeTraining:
    def test_float32_mode_trains_all_algorithms(self, setup):
        from repro import nn
        table, rt, data, labels = setup
        with nn.default_dtype("float32"):
            for training in ("vtrain", "wtrain", "dptrain"):
                config = DesignConfig(batch_size=32, training=training)
                rng = np.random.default_rng(0)
                trainer = make_trainer(config, *build(rt, config, rng), rng)
                result = trainer.train(data, labels, 2, epochs=1,
                                       iterations_per_epoch=3)
                assert np.isfinite(result.g_losses).all()
                assert np.isfinite(result.d_losses).all()
                # Parameters train in the engine dtype (running-stat
                # buffers keep float64 on purpose).
                for param in trainer.generator.parameters():
                    assert param.data.dtype == np.float32
                    assert param.grad is None or param.grad.dtype == np.float32

    def test_float64_training_is_deterministic(self, setup):
        """Fixed seeds must reproduce the trajectory bit for bit."""
        table, rt, data, labels = setup

        def run():
            config = DesignConfig(batch_size=32)
            rng = np.random.default_rng(7)
            gen, disc = build(rt, config, np.random.default_rng(3))
            trainer = VanillaTrainer(gen, disc, config, rng)
            result = trainer.train(data, labels, 2, epochs=2,
                                   iterations_per_epoch=3)
            return result, gen

        result_a, gen_a = run()
        result_b, gen_b = run()
        assert result_a.g_losses == result_b.g_losses
        assert result_a.d_losses == result_b.d_losses
        state_a, state_b = gen_a.state_dict(), gen_b.state_dict()
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key
