"""Fast-math (float32) model paths must agree with the parity graph.

The float32 engine mode rewrites hot paths (batched LSTM projections,
fused batch norm, joint head matmul).  These tests run the same weights
through both graphs and require close agreement — the rewrites may only
re-associate floating point sums, never change the math.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import BatchNorm1d, Tensor
from repro.gan.heads import MultiHead
from repro.gan.lstm import LSTMDiscriminator, LSTMGenerator
from repro.transform import RecordTransformer

from tests.conftest import make_mixed_table


@pytest.fixture
def blocks():
    table = make_mixed_table(n=120, seed=2)
    rt = RecordTransformer("onehot", "gmm", gmm_components=3,
                           rng=np.random.default_rng(0)).fit(table)
    return rt.blocks


def _both_modes(build_and_run):
    out64 = build_and_run()
    with nn.default_dtype("float32"):
        out32 = build_and_run()
    return out64, out32


def test_multihead_fast_path_matches(blocks, rng):
    h = rng.normal(size=(16, 32))

    def run():
        heads = MultiHead(32, blocks, rng=np.random.default_rng(5))
        x = Tensor(h, requires_grad=True)
        out = heads(x)
        (out * out).sum().backward()
        return out.data, x.grad

    (out64, grad64), (out32, grad32) = _both_modes(run)
    np.testing.assert_allclose(out32, out64, atol=1e-4, rtol=1e-3)
    np.testing.assert_allclose(grad32, grad64, atol=1e-3, rtol=1e-2)


def test_batchnorm_fused_matches(rng):
    x = rng.normal(size=(32, 8))

    def run():
        bn = BatchNorm1d(8)
        t = Tensor(x, requires_grad=True)
        out = bn(t, activation="relu")
        (out * out).sum().backward()
        return (out.data, t.grad, bn.gamma.grad, bn.beta.grad,
                bn.running_mean.copy(), bn.running_var.copy())

    r64, r32 = _both_modes(run)
    for a64, a32 in zip(r64, r32):
        np.testing.assert_allclose(a32, a64, atol=1e-3, rtol=1e-2)


def test_lstm_generator_fast_path_matches(blocks, rng):
    z = rng.normal(size=(12, 16))

    def run():
        gen = LSTMGenerator(16, blocks, hidden_dim=24, lstm_output_dim=12,
                            rng=np.random.default_rng(9))
        out = gen(Tensor(z))
        (out * out).sum().backward()
        grads = np.concatenate([p.grad.ravel() for p in gen.parameters()
                                if p.grad is not None])
        return out.data, grads

    (out64, g64), (out32, g32) = _both_modes(run)
    np.testing.assert_allclose(out32, out64, atol=1e-4, rtol=1e-3)
    np.testing.assert_allclose(g32, g64, atol=1e-2, rtol=5e-2)


def test_lstm_discriminator_fast_path_matches(blocks, rng):
    t = rng.normal(size=(12, sum(b.width for b in blocks)))

    def run():
        disc = LSTMDiscriminator(blocks, hidden_dim=24,
                                 rng=np.random.default_rng(4))
        x = Tensor(t, requires_grad=True)
        out = disc(x)
        out.sum().backward()
        return out.data, x.grad

    (out64, g64), (out32, g32) = _both_modes(run)
    np.testing.assert_allclose(out32, out64, atol=1e-4, rtol=1e-3)
    np.testing.assert_allclose(g32, g64, atol=1e-3, rtol=1e-2)


def test_gan_synthesizer_end_to_end_float32(rng):
    """Full fit/select/sample cycle in fast-math mode stays healthy."""
    from repro.core.design_space import DesignConfig
    from repro.gan.synthesizer import GANSynthesizer

    table = make_mixed_table(n=150, seed=4)
    with nn.default_dtype("float32"):
        synth = GANSynthesizer(config=DesignConfig(batch_size=32),
                               epochs=2, iterations_per_epoch=4, seed=0)
        synth.fit(table)
        out = synth.sample(60)
    assert len(out) == 60
    assert set(out.schema.names) == set(table.schema.names)
