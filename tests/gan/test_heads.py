"""Attribute-aware output heads (cases C1-C4)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gan.heads import BlockHead, MultiHead
from repro.nn import Tensor
from repro.transform.base import (
    BlockSpec, HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH, HEAD_TANH_SOFTMAX,
)


def block(head, width, start=0, name="b"):
    return BlockSpec(name=name, start=start, width=width, head=head,
                     discrete_block=head in (HEAD_SOFTMAX,
                                             HEAD_TANH_SOFTMAX))


class TestBlockHead:
    def test_tanh_head_bounded(self, rng):
        head = BlockHead(8, block(HEAD_TANH, 1), rng=rng)
        out = head(Tensor(rng.normal(size=(16, 8)) * 10)).data
        assert (np.abs(out) <= 1.0).all()
        assert out.shape == (16, 1)

    def test_sigmoid_head_in_unit_interval(self, rng):
        head = BlockHead(8, block(HEAD_SIGMOID, 1), rng=rng)
        out = head(Tensor(rng.normal(size=(16, 8)) * 10)).data
        assert ((out >= 0) & (out <= 1)).all()

    def test_softmax_head_distribution(self, rng):
        head = BlockHead(8, block(HEAD_SOFTMAX, 5), rng=rng)
        out = head(Tensor(rng.normal(size=(16, 8)))).data
        assert out.shape == (16, 5)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_tanh_softmax_head_structure(self, rng):
        head = BlockHead(8, block(HEAD_TANH_SOFTMAX, 4), rng=rng)
        out = head(Tensor(rng.normal(size=(16, 8)))).data
        assert out.shape == (16, 4)
        assert (np.abs(out[:, 0]) <= 1.0).all()
        np.testing.assert_allclose(out[:, 1:].sum(axis=1), 1.0)

    def test_unknown_head_rejected(self, rng):
        spec = BlockSpec(name="x", start=0, width=1, head="linear",
                         discrete_block=False)
        head = BlockHead.__new__(BlockHead)
        # Constructing with a bad head should fail at forward at latest.
        with pytest.raises(Exception):
            BlockHead(8, spec, rng=rng)(Tensor(rng.normal(size=(2, 8))))


class TestMultiHead:
    def test_concatenates_blocks_in_order(self, rng):
        blocks = [block(HEAD_TANH, 1, start=0, name="a"),
                  block(HEAD_SOFTMAX, 3, start=1, name="b"),
                  block(HEAD_SIGMOID, 1, start=4, name="c")]
        multi = MultiHead(8, blocks, rng=rng)
        out = multi(Tensor(rng.normal(size=(10, 8)))).data
        assert out.shape == (10, 5)
        np.testing.assert_allclose(out[:, 1:4].sum(axis=1), 1.0)

    def test_gradients_reach_all_heads(self, rng):
        blocks = [block(HEAD_TANH, 1, start=0, name="a"),
                  block(HEAD_SOFTMAX, 3, start=1, name="b")]
        multi = MultiHead(8, blocks, rng=rng)
        multi(Tensor(rng.normal(size=(4, 8)))).sum().backward()
        for param in multi.parameters():
            assert param.grad is not None
