"""Privacy metrics and the RDP accountant."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.privacy import (
    distance_to_closest_record, epsilon_for, hitting_rate,
    rdp_subsampled_gaussian, sigma_for_epsilon,
)

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=400, seed=11)


class TestHittingRate:
    def test_self_comparison_hits_everything(self, table):
        assert hitting_rate(table, table, n_samples=200, seed=0) == 1.0

    def test_disjoint_synthetic_never_hits(self, table):
        # Shift all numerics far away and flip categoricals.
        from repro.datasets.schema import Table

        cols = dict(table.columns)
        cols["age"] = cols["age"] + 1e6
        far = Table(table.schema, cols)
        assert hitting_rate(table, far, n_samples=200, seed=0) == 0.0

    def test_small_numeric_jitter_still_hits(self, table):
        from repro.datasets.schema import Table

        cols = dict(table.columns)
        span = cols["age"].max() - cols["age"].min()
        cols = {k: v.copy() for k, v in cols.items()}
        cols["age"] = cols["age"] + span / 1000.0  # well inside range/30
        jittered = Table(table.schema, cols)
        assert hitting_rate(table, jittered, n_samples=200, seed=0) == 1.0

    def test_schema_mismatch_raises(self, table, numeric_table):
        with pytest.raises(SchemaError):
            hitting_rate(table, numeric_table)


class TestDCR:
    def test_self_distance_zero(self, table):
        assert distance_to_closest_record(table, table,
                                          n_samples=100) == 0.0

    def test_larger_for_displaced_synthetic(self, table):
        from repro.datasets.schema import Table

        near_cols = {k: v.copy() for k, v in table.columns.items()}
        span = near_cols["age"].max() - near_cols["age"].min()
        near_cols["age"] = near_cols["age"] + span * 0.01
        near = Table(table.schema, near_cols)

        far_cols = {k: v.copy() for k, v in table.columns.items()}
        far_cols["age"] = far_cols["age"] + span * 0.5
        far = Table(table.schema, far_cols)

        d_near = distance_to_closest_record(table, near, n_samples=150)
        d_far = distance_to_closest_record(table, far, n_samples=150)
        assert d_far > d_near

    def test_nonnegative(self, table, rng):
        shuffled = table.take(rng.permutation(len(table)))
        assert distance_to_closest_record(table, shuffled,
                                          n_samples=100) >= 0.0


class TestAccountant:
    def test_rdp_zero_sampling(self):
        assert rdp_subsampled_gaussian(0.0, 1.0, 4) == 0.0

    def test_rdp_full_sampling_is_gaussian(self):
        assert rdp_subsampled_gaussian(1.0, 2.0, 8) == pytest.approx(
            8 / (2 * 4.0))

    def test_rdp_increases_with_sampling_rate(self):
        low = rdp_subsampled_gaussian(0.01, 1.0, 8)
        high = rdp_subsampled_gaussian(0.2, 1.0, 8)
        assert high > low

    def test_epsilon_monotone_in_noise(self):
        eps_low_noise = epsilon_for(0.8, q=0.02, steps=500)
        eps_high_noise = epsilon_for(4.0, q=0.02, steps=500)
        assert eps_high_noise < eps_low_noise

    def test_epsilon_monotone_in_steps(self):
        few = epsilon_for(2.0, q=0.02, steps=100)
        many = epsilon_for(2.0, q=0.02, steps=2000)
        assert many > few

    def test_zero_steps_zero_epsilon(self):
        assert epsilon_for(1.0, q=0.02, steps=0) == 0.0

    def test_sigma_inversion_consistent(self):
        sigma = sigma_for_epsilon(0.8, q=0.03, steps=400)
        eps = epsilon_for(sigma, q=0.03, steps=400)
        assert eps <= 0.8 + 1e-6
        # And not wastefully noisy: slightly less noise must break the bound.
        assert epsilon_for(sigma * 0.9, q=0.03, steps=400) > 0.8 - 0.05

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(-0.1, 1.0, 4)
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(0.1, 0.0, 4)
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(0.1, 1.0, 1)
        with pytest.raises(ValueError):
            sigma_for_epsilon(-1.0, q=0.1, steps=10)
