"""Cardinality models: fitting, sampling, persistence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.relational import (
    CardinalityModel, EmpiricalCardinality, NegativeBinomialCardinality,
    child_counts, make_cardinality_model,
)


def test_child_counts_includes_zero_children():
    parents = np.array([10, 20, 30, 40])
    fk = np.array([20, 20, 40, 20])
    counts = child_counts(parents, fk)
    assert counts.tolist() == [0, 3, 0, 1]


def test_child_counts_unsorted_parent_ids():
    parents = np.array([5, 1, 3])
    fk = np.array([3, 3, 5])
    assert child_counts(parents, fk).tolist() == [1, 0, 2]


def test_empirical_replays_histogram():
    counts = np.array([0, 0, 1, 1, 1, 4])
    model = EmpiricalCardinality().fit(counts)
    assert model.probs.tolist() == [2 / 6, 3 / 6, 0.0, 0.0, 1 / 6]
    draws = model.sample(4000, np.random.default_rng(0))
    assert set(np.unique(draws)) <= {0, 1, 4}
    assert abs(draws.mean() - counts.mean()) < 0.1
    assert abs(model.mean - counts.mean()) < 1e-12


def test_negbin_moments():
    rng = np.random.default_rng(1)
    counts = rng.negative_binomial(3.0, 0.4, size=4000)
    model = NegativeBinomialCardinality().fit(counts)
    draws = model.sample(4000, np.random.default_rng(2))
    assert abs(draws.mean() - counts.mean()) < 0.3
    assert abs(model.mean - counts.mean()) < 1e-9


def test_negbin_poisson_fallback():
    model = NegativeBinomialCardinality().fit(np.full(50, 2))
    assert model._poisson
    draws = model.sample(2000, np.random.default_rng(0))
    assert abs(draws.mean() - 2.0) < 0.2


def test_negbin_all_zero():
    model = NegativeBinomialCardinality().fit(np.zeros(10, dtype=np.int64))
    assert model.sample(5, np.random.default_rng(0)).tolist() == [0] * 5


@pytest.mark.parametrize("kind", ["empirical", "negbin"])
def test_state_roundtrip(kind):
    counts = np.array([0, 1, 1, 2, 5, 3])
    model = make_cardinality_model(kind).fit(counts)
    restored = CardinalityModel.from_state(model.to_state())
    rng_a, rng_b = (np.random.default_rng(7) for _ in range(2))
    assert (model.sample(100, rng_a) == restored.sample(100, rng_b)).all()


def test_unknown_kind():
    with pytest.raises(ConfigError, match="unknown cardinality model"):
        make_cardinality_model("zipf")
