"""ParentContextEncoder and relational fidelity metrics."""

import numpy as np
import pytest

from repro.datasets import sdata_relational
from repro.errors import TransformError
from repro.relational import (
    ParentContextEncoder, cardinality_fidelity, database_fidelity_report,
    parent_child_correlation,
)


@pytest.fixture(scope="module")
def database():
    return sdata_relational(n_customers=60, seed=0)


def test_encoder_shape_and_bounds(database):
    inner = database.inner_table("customers")
    encoder = ParentContextEncoder().fit(inner)
    context = encoder.encode(inner)
    assert context.shape == (len(inner), encoder.dim)
    # region one-hot (4) + age + income under simple normalization.
    assert encoder.dim == 6
    assert np.isfinite(context).all()
    assert context.min() >= -1.0 and context.max() <= 1.0


def test_encoder_requires_fit(database):
    encoder = ParentContextEncoder()
    with pytest.raises(TransformError, match="not fitted"):
        encoder.encode(database.inner_table("customers"))
    with pytest.raises(TransformError, match="not fitted"):
        encoder.dim


def test_encoder_state_roundtrip(database):
    inner = database.inner_table("customers")
    encoder = ParentContextEncoder().fit(inner)
    restored = ParentContextEncoder.from_state(encoder.to_state())
    np.testing.assert_array_equal(encoder.encode(inner),
                                  restored.encode(inner))


def test_identical_databases_score_perfectly(database):
    fk = database.foreign_keys[0]
    cardinality = cardinality_fidelity(database, database, fk)
    assert cardinality["count_tv_distance"] == 0.0
    assert cardinality["real_mean"] == cardinality["synthetic_mean"]
    correlation = parent_child_correlation(database, database, fk)
    assert correlation["mean_abs_difference"] == 0.0
    # The generator builds income-coupled order counts and amounts, so
    # the join correlations the metric is meant to watch are present.
    assert correlation["pairs"]["income~count"]["real"] > 0.2
    assert correlation["pairs"]["income~amount"]["real"] > 0.2


def test_report_shape(database):
    report = database_fidelity_report(database, database)
    assert set(report["tables"]) == {"customers", "orders"}
    assert report["tables"]["orders"]["marginal_tv_mean"] == 0.0
    assert report["foreign_keys"][0]["foreign_key"] == (
        "orders.customer_id->customers")
    assert report["dangling_references"] == {
        "orders.customer_id->customers": 0}
