"""Database / ForeignKey structural validation and ordering."""

import numpy as np
import pytest

from repro.datasets.schema import (
    Attribute, CATEGORICAL, NUMERICAL, Schema, Table,
)
from repro.errors import SchemaError
from repro.relational import Database, ForeignKey


def _table(n, prefix, extra=()):
    attrs = (Attribute(f"{prefix}_id", NUMERICAL, integral=True),) + extra
    columns = {f"{prefix}_id": np.arange(n)}
    for attr in extra:
        columns[attr.name] = (np.zeros(n, dtype=np.int64)
                              if attr.is_categorical else np.zeros(n))
    return Table(Schema(attrs), columns)


def make_pair(n_parent=4, n_child=6):
    parent = _table(n_parent, "p",
                    (Attribute("x", NUMERICAL),))
    child_attrs = (
        Attribute("c_id", NUMERICAL, integral=True),
        Attribute("p_id", NUMERICAL, integral=True),
        Attribute("y", NUMERICAL),
    )
    child = Table(Schema(child_attrs), {
        "c_id": np.arange(n_child),
        "p_id": np.arange(n_child) % n_parent,
        "y": np.zeros(n_child),
    })
    fk = ForeignKey(child="child", column="p_id", parent="parent",
                    parent_key="p_id")
    return parent, child, fk


def test_valid_database_constructs():
    parent, child, fk = make_pair()
    db = Database({"parent": parent, "child": child},
                  primary_keys={"parent": "p_id", "child": "c_id"},
                  foreign_keys=(fk,))
    assert db.topological_order() == ["parent", "child"]
    assert db.check_integrity() == {fk.key: 0}
    assert db.key_columns("child") == {"c_id", "p_id"}
    inner = db.inner_table("child")
    assert inner.schema.names == ["y"]


def test_dangling_child_table_reference():
    parent, child, _ = make_pair()
    fk = ForeignKey(child="nope", column="p_id", parent="parent",
                    parent_key="p_id")
    with pytest.raises(SchemaError, match="unknown child table"):
        Database({"parent": parent, "child": child},
                 primary_keys={"parent": "p_id"}, foreign_keys=(fk,))


def test_dangling_parent_table_reference():
    parent, child, _ = make_pair()
    fk = ForeignKey(child="child", column="p_id", parent="nope",
                    parent_key="p_id")
    with pytest.raises(SchemaError, match="unknown parent table"):
        Database({"parent": parent, "child": child},
                 primary_keys={"parent": "p_id"}, foreign_keys=(fk,))


def test_dangling_column_reference():
    parent, child, _ = make_pair()
    fk = ForeignKey(child="child", column="missing", parent="parent",
                    parent_key="p_id")
    with pytest.raises(SchemaError, match="no attribute named 'missing'"):
        Database({"parent": parent, "child": child},
                 primary_keys={"parent": "p_id"}, foreign_keys=(fk,))


def test_kind_mismatch():
    parent, _, _ = make_pair()
    child_attrs = (
        Attribute("c_id", NUMERICAL, integral=True),
        Attribute("p_id", CATEGORICAL, categories=("a", "b")),
    )
    child = Table(Schema(child_attrs),
                  {"c_id": np.arange(3), "p_id": np.zeros(3)})
    fk = ForeignKey(child="child", column="p_id", parent="parent",
                    parent_key="p_id")
    with pytest.raises(SchemaError, match="does not match"):
        Database({"parent": parent, "child": child},
                 primary_keys={"parent": "p_id"}, foreign_keys=(fk,))


def test_fk_must_reference_primary_key():
    parent, child, _ = make_pair()
    fk = ForeignKey(child="child", column="p_id", parent="parent",
                    parent_key="x")
    with pytest.raises(SchemaError, match="declared primary key"):
        Database({"parent": parent, "child": child},
                 primary_keys={"parent": "p_id"}, foreign_keys=(fk,))


def test_duplicate_primary_key_values():
    parent = Table(
        Schema((Attribute("p_id", NUMERICAL, integral=True),
                Attribute("x", NUMERICAL))),
        {"p_id": np.array([0, 0, 1]), "x": np.zeros(3)})
    with pytest.raises(SchemaError, match="duplicate values"):
        Database({"parent": parent}, primary_keys={"parent": "p_id"})


def test_categorical_primary_key_rejected():
    parent = Table(
        Schema((Attribute("p_id", CATEGORICAL, categories=("a", "b")),)),
        {"p_id": np.array([0, 1])})
    with pytest.raises(SchemaError, match="numerical id"):
        Database({"parent": parent}, primary_keys={"parent": "p_id"})


def test_cycle_detection():
    a = Table(Schema((Attribute("a_id", NUMERICAL, integral=True),
                      Attribute("b_ref", NUMERICAL, integral=True),
                      Attribute("v", NUMERICAL))),
              {"a_id": np.arange(2), "b_ref": np.arange(2),
               "v": np.zeros(2)})
    b = Table(Schema((Attribute("b_id", NUMERICAL, integral=True),
                      Attribute("a_ref", NUMERICAL, integral=True),
                      Attribute("w", NUMERICAL))),
              {"b_id": np.arange(2), "a_ref": np.arange(2),
               "w": np.zeros(2)})
    fks = (ForeignKey("a", "b_ref", "b", "b_id"),
           ForeignKey("b", "a_ref", "a", "a_id"))
    with pytest.raises(SchemaError, match="cycle"):
        Database({"a": a, "b": b},
                 primary_keys={"a": "a_id", "b": "b_id"},
                 foreign_keys=fks)


def test_self_reference_cycle():
    a = Table(Schema((Attribute("a_id", NUMERICAL, integral=True),
                      Attribute("parent_ref", NUMERICAL, integral=True))),
              {"a_id": np.arange(2), "parent_ref": np.arange(2)})
    fk = ForeignKey("a", "parent_ref", "a", "a_id")
    with pytest.raises(SchemaError, match="references itself"):
        Database({"a": a}, primary_keys={"a": "a_id"}, foreign_keys=(fk,))


def test_check_integrity_counts_dangling_values():
    parent, child, fk = make_pair()
    child.columns["p_id"][0] = 99  # no such parent
    db = Database({"parent": parent, "child": child},
                  primary_keys={"parent": "p_id", "child": "c_id"},
                  foreign_keys=(fk,))
    assert db.check_integrity() == {fk.key: 1}


def test_inner_table_requires_non_key_attributes():
    parent = _table(3, "p", (Attribute("x", NUMERICAL),))
    child = Table(
        Schema((Attribute("c_id", NUMERICAL, integral=True),
                Attribute("p_id", NUMERICAL, integral=True))),
        {"c_id": np.arange(3), "p_id": np.arange(3) % 3})
    fk = ForeignKey("child", "p_id", "parent", "p_id")
    db = Database({"parent": parent, "child": child},
                  primary_keys={"parent": "p_id", "child": "c_id"},
                  foreign_keys=(fk,))
    with pytest.raises(SchemaError, match="no non-key attributes"):
        db.inner_table("child")


def test_structure_roundtrip():
    parent, child, fk = make_pair()
    db = Database({"parent": parent, "child": child},
                  primary_keys={"parent": "p_id", "child": "c_id"},
                  foreign_keys=(fk,))
    structure = db.structure_to_dict()
    assert structure["tables"] == ["parent", "child"]
    assert ForeignKey.from_dict(structure["foreign_keys"][0]) == fk
