"""DatabaseSynthesizer: integrity, row counts, persistence, families."""

import numpy as np
import pytest

import repro
from repro.datasets import sdata_relational
from repro.errors import TrainingError
from repro.relational import (
    DatabaseSynthesizer, child_counts, load_database_synthesizer,
)

FAST = dict(epochs=1, iterations_per_epoch=3)


@pytest.fixture(scope="module")
def database():
    return sdata_relational(n_customers=80, orders_per_customer=2.0, seed=0)


def _method_kwargs(method):
    # PrivBayes takes no epoch knobs; neural families get tiny budgets.
    return {} if method == "privbayes" else dict(FAST)


@pytest.mark.parametrize("method", ["gan", "vae", "privbayes"])
def test_referential_integrity_and_row_counts(database, method):
    synth = DatabaseSynthesizer(method=method,
                                method_kwargs=_method_kwargs(method),
                                seed=0)
    synth.fit(database)
    out = synth.sample(scale=1.0, seed=11)

    # Zero dangling foreign keys, for every per-table family.
    assert out.check_integrity() == {
        "orders.customer_id->customers": 0}

    # Exact row counts: the parent honours scale; the child table has
    # exactly one row per drawn cardinality unit.
    assert len(out["customers"]) == len(database["customers"])
    counts = child_counts(out.primary_key_values("customers"),
                          out["orders"].column("customer_id"))
    assert counts.sum() == len(out["orders"])

    # Primary keys are dense, unique ids.
    assert (np.sort(out.primary_key_values("orders"))
            == np.arange(len(out["orders"]))).all()

    # Only the GAN family trains with parent-context conditioning.
    assert synth._conditioned["orders"] == (method == "gan")


def test_seeded_sampling_reproducible(database):
    synth = DatabaseSynthesizer(method="vae", method_kwargs=FAST, seed=0)
    synth.fit(database)
    a = synth.sample(scale=0.5, seed=3)
    b = synth.sample(scale=0.5, seed=3)
    for name in a.table_names:
        for column in a[name].columns:
            assert (a[name].columns[column] == b[name].columns[column]).all()


def test_scale_and_sizes(database):
    synth = DatabaseSynthesizer(method="privbayes", seed=0)
    synth.fit(database)
    half = synth.sample(scale=0.5, seed=1)
    assert len(half["customers"]) == round(len(database["customers"]) * 0.5)
    fixed = synth.sample(sizes={"customers": 17}, seed=1)
    assert len(fixed["customers"]) == 17
    with pytest.raises(ValueError, match="scale must be positive"):
        synth.sample(scale=0.0)


def test_fit_rejects_dangling_training_data(database):
    broken = sdata_relational(n_customers=30, seed=1)
    broken["orders"].columns["customer_id"][0] = 10_000
    synth = DatabaseSynthesizer(method="privbayes", seed=0)
    with pytest.raises(TrainingError, match="dangling foreign keys"):
        synth.fit(broken)


def test_sample_requires_fit():
    with pytest.raises(TrainingError, match="not fitted"):
        DatabaseSynthesizer().sample()


def test_per_table_method_overrides(database):
    synth = DatabaseSynthesizer(method="privbayes",
                                per_table={"orders": "vae"},
                                method_kwargs=FAST, seed=0)
    synth.fit(database)
    assert synth.table_method("customers") == "privbayes"
    assert synth.table_method("orders") == "vae"
    assert type(synth._synths["orders"]).__name__ == "VAESynthesizer"


def test_save_load_roundtrip(tmp_path, database):
    synth = DatabaseSynthesizer(method="gan", method_kwargs=FAST, seed=0)
    synth.fit(database)
    synth.save(tmp_path / "model")
    restored = load_database_synthesizer(tmp_path / "model")
    a = synth.sample(scale=1.0, seed=5)
    b = restored.sample(scale=1.0, seed=5)
    for name in a.table_names:
        for column in a[name].columns:
            np.testing.assert_array_equal(a[name].columns[column],
                                          b[name].columns[column])
    assert restored._conditioned == synth._conditioned


def test_registry_exposes_relational():
    assert "relational" in repro.available_synthesizers()
    assert repro.make_synthesizer("relational",
                                  method="vae").method == "relational"


def test_facade_synthesize_database(database):
    result = repro.synthesize_database(database, method="vae", seed=0,
                                       sample_seed=2, **FAST)
    assert result.database.check_integrity() == {
        "orders.customer_id->customers": 0}
    assert result.report is not None
    assert set(result.report) == {"tables", "foreign_keys",
                                  "dangling_references"}
    assert result.provenance["per_table"] == {"customers": "vae",
                                              "orders": "vae"}
    assert result.provenance["n_synthetic"]["customers"] == len(
        database["customers"])
