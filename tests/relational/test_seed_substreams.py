"""Regression: per-table / per-FK seed substreams (schema stability).

Before the substream fix, the database synthesizer drew per-table seeds
and per-FK assignments sequentially from one generator, so *adding a
table* to the schema shifted every later table's stream — the synthetic
``orders`` table changed because an unrelated ``stores`` table joined
the database.  Streams are now keyed by table / FK name, making each
table's draw invariant to the rest of the schema.
"""

import numpy as np

from repro.datasets import simulated
from repro.datasets.schema import (
    Attribute, CATEGORICAL, NUMERICAL, Schema, Table,
)
from repro.relational import Database
from repro.relational.synthesizer import DatabaseSynthesizer

PB = dict(method="privbayes", method_kwargs={"epsilon": None})


def assert_tables_equal(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def with_extra_table(database: Database) -> Database:
    """The same database plus one unrelated ``stores`` table."""
    rng = np.random.default_rng(99)
    n = 30
    schema = Schema(attributes=(
        Attribute("store_id", NUMERICAL, integral=True),
        Attribute("size", NUMERICAL),
        Attribute("tier", CATEGORICAL, categories=("s", "m", "l")),
    ))
    stores = Table(schema, {
        "store_id": np.arange(n),
        "size": rng.normal(100.0, 20.0, n),
        "tier": rng.integers(0, 3, n),
    })
    return Database({**database.tables, "stores": stores},
                    primary_keys={**database.primary_keys,
                                  "stores": "store_id"},
                    foreign_keys=database.foreign_keys)


def test_adding_a_table_never_perturbs_another_tables_draw():
    database = simulated.sdata_relational(n_customers=40, seed=0)
    bigger = with_extra_table(database)

    small = DatabaseSynthesizer(seed=0, **PB).fit(database)
    large = DatabaseSynthesizer(seed=0, **PB).fit(bigger)

    a = small.sample(1.0, seed=11)
    b = large.sample(1.0, seed=11)
    for name in ("customers", "orders"):
        assert_tables_equal(a[name], b[name])
    assert "stores" in b.table_names


def test_seeded_database_draw_reproducible():
    database = simulated.sdata_relational(n_customers=40, seed=0)
    synth = DatabaseSynthesizer(seed=0, **PB).fit(database)
    a = synth.sample(1.0, seed=5)
    b = synth.sample(1.0, seed=5)
    for name in a.table_names:
        assert_tables_equal(a[name], b[name])
    c = synth.sample(1.0, seed=6)
    assert any(
        len(a[name]) != len(c[name])
        or any(not np.array_equal(a[name].column(col), c[name].column(col))
               for col in a[name].schema.names)
        for name in a.table_names)


def test_fk_substreams_keyed_not_sequential():
    """The cardinality draw for one FK must not depend on how many
    other draws preceded it: equal-seed draws of the same edge agree
    even when the order of table generation work differs (sizes
    override changes the root row count but not the fan-out stream)."""
    database = simulated.sdata_relational(n_customers=40, seed=0)
    synth = DatabaseSynthesizer(seed=0, **PB).fit(database)
    a = synth.sample(1.0, seed=3)
    b = synth.sample(1.0, sizes={"customers": len(a["customers"])},
                     seed=3)
    assert_tables_equal(a["orders"], b["orders"])
