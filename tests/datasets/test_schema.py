"""Schema/Table invariants."""

import numpy as np
import pytest

from repro.datasets.schema import (
    Attribute, CATEGORICAL, NUMERICAL, Schema, Table, split_train_valid_test,
)
from repro.errors import SchemaError

from tests.conftest import make_mixed_table


class TestAttribute:
    def test_categorical_needs_categories(self):
        with pytest.raises(SchemaError):
            Attribute("a", CATEGORICAL)

    def test_numerical_rejects_categories(self):
        with pytest.raises(SchemaError):
            Attribute("a", NUMERICAL, categories=("x",))

    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            Attribute("a", "text")

    def test_domain_size(self):
        attr = Attribute("a", CATEGORICAL, categories=("x", "y", "z"))
        assert attr.domain_size == 3

    def test_domain_size_on_numerical_raises(self):
        with pytest.raises(SchemaError):
            Attribute("a", NUMERICAL).domain_size


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Attribute("a", NUMERICAL), Attribute("a", NUMERICAL)))

    def test_unknown_label_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Attribute("a", NUMERICAL),), label_name="b")

    def test_feature_attributes_exclude_label(self, mixed_table):
        names = [a.name for a in mixed_table.schema.feature_attributes]
        assert "label" not in names
        assert len(names) == 4

    def test_numerical_and_categorical_names(self, mixed_table):
        schema = mixed_table.schema
        assert schema.numerical_names() == ["age", "income"]
        assert schema.categorical_names(include_label=False) == ["job", "city"]

    def test_without_label(self, mixed_table):
        stripped = mixed_table.schema.without_label()
        assert stripped.label is None
        assert len(stripped) == 4


class TestTable:
    def test_missing_column_rejected(self):
        schema = Schema((Attribute("a", NUMERICAL),))
        with pytest.raises(SchemaError):
            Table(schema, {})

    def test_misaligned_columns_rejected(self):
        schema = Schema((Attribute("a", NUMERICAL),
                         Attribute("b", NUMERICAL)))
        with pytest.raises(SchemaError):
            Table(schema, {"a": np.zeros(3), "b": np.zeros(4)})

    def test_out_of_domain_codes_rejected(self):
        schema = Schema((Attribute("c", CATEGORICAL, categories=("x", "y")),))
        with pytest.raises(SchemaError):
            Table(schema, {"c": np.array([0, 2])})

    def test_take_preserves_schema(self, mixed_table):
        subset = mixed_table.take(np.arange(10))
        assert len(subset) == 10
        assert subset.schema is mixed_table.schema

    def test_decoded_column(self, mixed_table):
        decoded = mixed_table.decoded_column("job")
        assert set(decoded) <= {"eng", "doc", "art"}

    def test_to_records_shape(self, mixed_table):
        records = mixed_table.to_records()
        assert len(records) == len(mixed_table)
        assert len(records[0]) == 5

    def test_concat_rows(self, mixed_table):
        both = mixed_table.concat_rows(mixed_table)
        assert len(both) == 2 * len(mixed_table)

    def test_drop_label(self, mixed_table):
        dropped = mixed_table.drop_label()
        assert dropped.schema.label is None
        assert "label" not in dropped.columns

    def test_label_codes_without_label_raises(self, mixed_table):
        with pytest.raises(SchemaError):
            mixed_table.drop_label().label_codes

    def test_sample_rows(self, mixed_table, rng):
        sample = mixed_table.sample_rows(17, rng)
        assert len(sample) == 17


class TestSplit:
    def test_ratios(self, rng):
        table = make_mixed_table(n=600)
        train, valid, test = split_train_valid_test(table, rng)
        assert len(train) == 400
        assert len(valid) == 100
        assert len(test) == 100

    def test_partition_is_disjoint_and_complete(self, rng):
        table = make_mixed_table(n=120)
        train, valid, test = split_train_valid_test(table, rng)
        total = len(train) + len(valid) + len(test)
        assert total == 120
        # Disjointness: age values are almost surely unique floats.
        ages = np.concatenate([train.column("age"), valid.column("age"),
                               test.column("age")])
        assert len(np.unique(ages)) == len(np.unique(table.column("age")))

    def test_bad_ratio_count(self, rng):
        with pytest.raises(ValueError):
            split_train_valid_test(make_mixed_table(50), rng, ratios=(1, 1))
