"""Dataset generators: simulated (SDataNum/SDataCat) and real stand-ins."""

import numpy as np
import pytest

from repro import datasets
from repro.datasets.real import SPECS, generate
from repro.datasets.simulated import GRID_VALUES, sdata_cat, sdata_num


class TestSDataNum:
    def test_shape_and_schema(self):
        table = sdata_num(n_records=500, seed=1)
        assert len(table) == 500
        assert table.schema.numerical_names() == ["x", "y"]
        assert table.schema.label_name == "label"

    def test_means_cover_grid(self):
        table = sdata_num(n_records=20000, rho=0.5, seed=0)
        x = table.column("x")
        # Values concentrate near grid coordinates -4..4.
        assert x.min() > min(GRID_VALUES) - 4
        assert x.max() < max(GRID_VALUES) + 4

    def test_correlation_increases_with_rho(self):
        low = sdata_num(n_records=20000, rho=0.1, seed=0)
        high = sdata_num(n_records=20000, rho=0.9, seed=0)

        def within_component_corr(t):
            # Correlation of residuals around the nearest grid point.
            x, y = t.column("x"), t.column("y")
            gx = np.round(x / 2) * 2
            gy = np.round(y / 2) * 2
            return np.corrcoef(x - gx, y - gy)[0, 1]

        assert within_component_corr(high) > within_component_corr(low)

    def test_skew_flag_controls_label_ratio(self):
        balanced = sdata_num(n_records=5000, skew=False, seed=0)
        skewed = sdata_num(n_records=5000, skew=True, seed=0)
        assert abs(balanced.column("label").mean() - 0.5) < 0.15
        assert skewed.column("label").mean() < 0.2

    def test_deterministic_by_seed(self):
        a = sdata_num(n_records=100, seed=42)
        b = sdata_num(n_records=100, seed=42)
        np.testing.assert_array_equal(a.column("x"), b.column("x"))

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            sdata_num(rho=1.5)


class TestSDataCat:
    def test_schema(self):
        table = sdata_cat(n_records=300, seed=0)
        assert len(table.schema.categorical_names(include_label=False)) == 5
        assert table.schema.label_name == "label"

    def test_chain_correlation_increases_with_p(self):
        low = sdata_cat(n_records=10000, p=0.3, seed=0)
        high = sdata_cat(n_records=10000, p=0.95, seed=0)

        def agreement(t):
            return float(np.mean(t.column("a0") == t.column("a1")))

        assert agreement(high) > agreement(low) + 0.3

    def test_deterministic_chain_when_p_is_one(self):
        table = sdata_cat(n_records=1000, p=1.0, seed=0)
        np.testing.assert_array_equal(table.column("a0"),
                                      table.column("a4"))

    def test_skew_flag(self):
        skewed = sdata_cat(n_records=5000, skew=True, seed=0)
        assert skewed.column("label").mean() < 0.2

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            sdata_cat(p=0.0)


class TestRealStandIns:
    @pytest.mark.parametrize("name", list(SPECS))
    def test_schema_matches_paper_table2(self, name):
        spec = SPECS[name]
        table = datasets.load(name, n_records=300, seed=0)
        schema = table.schema
        include_label = spec.n_labels == 0
        assert len(schema.numerical_names(include_label=True)) == \
            spec.n_numerical
        n_cat = len(schema.categorical_names(include_label=False))
        assert n_cat == len(spec.categorical_domains)
        if spec.n_labels:
            assert schema.label.domain_size == spec.n_labels
        else:
            assert schema.label is None

    def test_census_is_very_skew(self):
        table = datasets.load("census", n_records=8000, seed=0)
        rate = (table.label_codes == 1).mean()
        assert rate < 0.12

    def test_digits_is_balanced(self):
        table = datasets.load("digits", n_records=8000, seed=0)
        counts = np.bincount(table.label_codes, minlength=10)
        assert counts.max() / max(counts.min(), 1) < 2.0

    def test_attribute_correlation_exists(self):
        """Latent factors must induce numeric correlations (paper char.)."""
        table = datasets.load("sat", n_records=5000, seed=0)
        cols = [table.column(f"num{i}") for i in range(6)]
        corr = np.corrcoef(np.vstack(cols))
        off_diag = np.abs(corr[np.triu_indices(6, 1)])
        assert off_diag.max() > 0.2

    def test_deterministic_by_seed(self):
        a = datasets.load("adult", n_records=200, seed=5)
        b = datasets.load("adult", n_records=200, seed=5)
        np.testing.assert_array_equal(a.column("num0"), b.column("num0"))
        c = datasets.load("adult", n_records=200, seed=6)
        assert not np.array_equal(a.column("num0"), c.column("num0"))

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            datasets.load("nope")

    def test_available_lists_everything(self):
        names = datasets.available()
        assert "adult" in names
        assert "sdata_num" in names

    def test_load_sdata_with_kwargs(self):
        table = datasets.load("sdata_cat", n_records=100, p=0.9, skew=True)
        assert len(table) == 100
