"""Shared fixtures: small deterministic tables and RNGs."""

import numpy as np
import pytest

from repro.datasets.schema import Attribute, CATEGORICAL, NUMERICAL, Schema, Table


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_mixed_table(n=200, seed=0, label_skew=0.3):
    """A small mixed-type labeled table used across test modules."""
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < label_skew).astype(np.int64)
    age = np.where(labels == 1, rng.normal(52, 6, n), rng.normal(33, 8, n))
    income = rng.normal(30 + 40 * labels, 10, n)
    job = np.where(labels == 1,
                   rng.choice(3, n, p=[0.6, 0.3, 0.1]),
                   rng.choice(3, n, p=[0.1, 0.3, 0.6])).astype(np.int64)
    city = rng.integers(0, 4, n)
    schema = Schema(
        attributes=(
            Attribute("age", NUMERICAL),
            Attribute("income", NUMERICAL),
            Attribute("job", CATEGORICAL, categories=("eng", "doc", "art")),
            Attribute("city", CATEGORICAL,
                      categories=("a", "b", "c", "d")),
            Attribute("label", CATEGORICAL, categories=("neg", "pos")),
        ),
        label_name="label",
    )
    return Table(schema, {"age": age, "income": income, "job": job,
                          "city": city, "label": labels})


@pytest.fixture
def mixed_table():
    return make_mixed_table()


@pytest.fixture
def numeric_table():
    """Numerical-attributes-only labeled table."""
    rng = np.random.default_rng(7)
    n = 150
    labels = rng.integers(0, 2, n)
    x = rng.normal(labels * 3.0, 1.0, n)
    y = rng.normal(-labels * 2.0, 1.0, n)
    schema = Schema(
        attributes=(
            Attribute("x", NUMERICAL),
            Attribute("y", NUMERICAL),
            Attribute("label", CATEGORICAL, categories=("neg", "pos")),
        ),
        label_name="label",
    )
    return Table(schema, {"x": x, "y": y, "label": labels})


def numeric_gradient(func, x, eps=1e-6):
    """Central finite differences of ``func()`` w.r.t. array ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = func()
        x[idx] = original - eps
        f_minus = func()
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad
