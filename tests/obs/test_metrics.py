"""repro.obs.metrics: registry, instruments, snapshot/merge."""

import pickle
import threading

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, get_registry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("events_total", "Events.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self, registry):
        counter = registry.counter("rows_total", "Rows.",
                                   labelnames=("model",))
        counter.inc(5, model="a")
        counter.inc(7, model="b")
        assert counter.value(model="a") == 5
        assert counter.value(model="b") == 7

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("events_total", "Events.")
        with pytest.raises(ValueError, match="amount"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("rows_total", "Rows.",
                                   labelnames=("model",))
        with pytest.raises(ValueError, match="rows_total"):
            counter.inc(1)
        with pytest.raises(ValueError, match="rows_total"):
            counter.inc(1, model="a", extra="b")

    def test_label_values_coerced_to_str(self, registry):
        counter = registry.counter("chunks_total", "Chunks.",
                                   labelnames=("index",))
        counter.inc(1, index=3)
        assert counter.value(index="3") == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value() == 7

    def test_gauges_go_negative(self, registry):
        gauge = registry.gauge("delta", "Signed level.")
        gauge.dec(3)
        assert gauge.value() == -3


class TestHistogram:
    def test_observation_lands_in_first_covering_bucket(self, registry):
        hist = registry.histogram("latency", "Latency.",
                                  buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)   # -> bucket 1.0
        hist.observe(2.0)   # boundary is inclusive -> bucket 2.0
        hist.observe(99.0)  # -> overflow (+Inf)
        snapshot = registry.snapshot()
        cell = snapshot["latency"]["series"][()]
        assert cell["counts"] == [1, 1, 0, 1]
        assert cell["count"] == 3
        assert cell["sum"] == pytest.approx(101.5)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
        assert len(DEFAULT_BUCKETS) == 16

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", "H.", buckets=())
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", "H.", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("events_total", "Events.")
        again = registry.counter("events_total", "Events.")
        assert first is again

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("events_total", "Events.")
        with pytest.raises(ValueError, match="events_total"):
            registry.gauge("events_total", "Events.")

    def test_labelnames_mismatch_rejected(self, registry):
        registry.counter("rows_total", "Rows.", labelnames=("model",))
        with pytest.raises(ValueError, match="rows_total"):
            registry.counter("rows_total", "Rows.",
                             labelnames=("model", "endpoint"))

    def test_bucket_mismatch_rejected(self, registry):
        registry.histogram("latency", "L.", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="latency"):
            registry.histogram("latency", "L.", buckets=(1.0, 2.0, 4.0))

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("events_total", "Events.")
        gauge = registry.gauge("depth", "Depth.")
        hist = registry.histogram("latency", "L.", buckets=(1.0,))
        counter.inc(5)
        gauge.set(5)
        hist.observe(0.5)
        assert counter.value() == 0
        assert gauge.value() == 0
        assert hist.count() == 0
        registry.enable()
        counter.inc(5)
        assert counter.value() == 5

    def test_not_picklable(self, registry):
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(registry)

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("events_total", "Events.",
                                   labelnames=("worker",))
        threads = 8
        per_thread = 500

        def worker(i):
            for _ in range(per_thread):
                counter.inc(worker=str(i % 2))

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads * per_thread


class TestSnapshotMerge:
    def test_snapshot_is_a_deep_copy(self, registry):
        counter = registry.counter("events_total", "Events.")
        counter.inc(3)
        snapshot = registry.snapshot()
        snapshot["events_total"]["series"][()] = 999
        assert counter.value() == 3

    def test_merge_adds_counters_and_histograms(self, registry):
        counter = registry.counter("events_total", "Events.")
        hist = registry.histogram("latency", "L.", buckets=(1.0, 2.0))
        counter.inc(3)
        hist.observe(0.5)
        other = MetricsRegistry()
        other.merge(registry.snapshot())
        other.merge(registry.snapshot())
        assert other.counter("events_total").value() == 6
        cell = other.snapshot()["latency"]["series"][()]
        assert cell["counts"] == [2, 0, 0]
        assert cell["count"] == 2

    def test_merge_overwrites_gauges(self, registry):
        registry.gauge("depth", "Depth.").set(4)
        other = MetricsRegistry()
        other.gauge("depth", "Depth.").set(99)
        other.merge(registry.snapshot())
        assert other.gauge("depth").value() == 4

    def test_merge_creates_missing_metrics(self, registry):
        registry.counter("events_total", "Events.",
                         labelnames=("kind",)).inc(2, kind="x")
        other = MetricsRegistry()
        other.merge(registry.snapshot())
        assert other.counter("events_total",
                             labelnames=("kind",)).value(kind="x") == 2

    def test_merge_unknown_type_rejected(self, registry):
        with pytest.raises(ValueError, match="unknown type"):
            registry.merge({"weird": {"type": "summary",
                                      "labelnames": (), "series": {}}})


class TestDefaultRegistry:
    def test_singleton(self):
        assert get_registry() is get_registry()

    def test_env_var_disables_initial_state(self, monkeypatch):
        monkeypatch.setattr(metrics_mod, "_default_registry", None)
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert get_registry().enabled is False
