"""repro.obs.clock: the injectable clock abstraction."""

import pytest

from repro.obs import clock as obs_clock
from repro.obs.clock import Clock, ManualClock, SystemClock


class TestSystemClock:
    def test_reads_are_floats_and_advance(self):
        clock = SystemClock()
        first = clock.perf()
        second = clock.perf()
        assert isinstance(first, float)
        assert second >= first
        assert clock.monotonic() <= clock.monotonic()
        assert clock.wall() > 1_500_000_000  # sane epoch seconds

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Clock().monotonic()


class TestManualClock:
    def test_time_moves_only_via_advance(self):
        clock = ManualClock(start=10.0)
        assert clock.monotonic() == 10.0
        assert clock.perf() == 10.0
        clock.advance(2.5)
        assert clock.monotonic() == 12.5
        assert clock.perf() == 12.5

    def test_wall_tracks_epoch_plus_elapsed(self):
        clock = ManualClock(start=5.0, epoch=1_000.0)
        assert clock.wall() == 1_000.0
        clock.advance(3.0)
        assert clock.wall() == 1_003.0

    def test_advance_returns_self_for_chaining(self):
        clock = ManualClock()
        assert clock.advance(1.0).advance(1.0).monotonic() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            ManualClock().advance(-0.1)


class TestInstallation:
    def test_default_is_system_clock(self):
        assert isinstance(obs_clock.get_clock(), SystemClock)

    def test_set_clock_and_restore(self):
        manual = ManualClock(start=7.0)
        obs_clock.set_clock(manual)
        try:
            assert obs_clock.get_clock() is manual
            assert obs_clock.monotonic() == 7.0
            assert obs_clock.perf() == 7.0
            assert obs_clock.wall() == manual.wall()
        finally:
            obs_clock.set_clock(None)
        assert isinstance(obs_clock.get_clock(), SystemClock)

    def test_use_clock_scopes_and_restores_on_error(self):
        manual = ManualClock(start=1.0)
        with obs_clock.use_clock(manual) as installed:
            assert installed is manual
            assert obs_clock.monotonic() == 1.0
        assert isinstance(obs_clock.get_clock(), SystemClock)
        with pytest.raises(RuntimeError):
            with obs_clock.use_clock(manual):
                raise RuntimeError("boom")
        assert isinstance(obs_clock.get_clock(), SystemClock)

    def test_module_functions_follow_the_active_clock(self):
        manual = ManualClock()
        with obs_clock.use_clock(manual):
            before = obs_clock.monotonic()
            manual.advance(4.0)
            assert obs_clock.monotonic() - before == 4.0
