"""repro.obs.trace: spans, stitching, retry adoption, coverage."""

import pickle

import pytest

from repro.obs.clock import ManualClock, use_clock
from repro.obs.trace import Span, Trace


@pytest.fixture
def clock():
    manual = ManualClock()
    with use_clock(manual):
        yield manual


class TestSpan:
    def test_duration_requires_end(self):
        span = Span("s1", "work", 1.0)
        with pytest.raises(ValueError, match="s1"):
            span.duration()
        span.end = 3.5
        assert span.duration() == 2.5

    def test_dict_round_trip(self):
        span = Span("chunk-0", "chunk", 1.0, end=2.0,
                    parent_id="root", tags={"chunk": 0})
        again = Span.from_dict(span.to_dict())
        assert again.span_id == "chunk-0"
        assert again.parent_id == "root"
        assert again.duration() == 1.0
        assert again.tags == {"chunk": 0}


class TestTrace:
    def test_root_duration_is_exact_under_manual_clock(self, clock):
        trace = Trace("request")
        clock.advance(1.25)
        trace.finish()
        assert trace.root.duration() == 1.25
        trace.finish()  # idempotent: end is not moved
        assert trace.root.duration() == 1.25

    def test_span_context_manager_records_child(self, clock):
        trace = Trace()
        clock.advance(0.5)
        with trace.span("dispatch", chunks=4):
            clock.advance(2.0)
        (span,) = trace.spans()
        assert span.name == "dispatch"
        assert span.parent_id == "root"
        assert span.start - trace.root.start == 0.5
        assert span.duration() == 2.0
        assert span.tags == {"chunks": 4}

    def test_span_recorded_even_when_body_raises(self, clock):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("batch"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (span,) = trace.spans()
        assert span.duration() == 1.0

    def test_add_stitches_worker_dict(self, clock):
        trace = Trace()
        span = trace.add({"span_id": "chunk-0", "name": "chunk",
                          "start": 1.0, "end": 2.0,
                          "tags": {"chunk": 0, "worker": 1}})
        assert span.parent_id == "root"
        assert trace.spans()[0].span_id == "chunk-0"

    def test_retry_spans_are_adopted_not_replaced(self, clock):
        trace = Trace()
        payload = {"span_id": "chunk-3", "name": "chunk",
                   "start": 0.0, "end": 1.0, "tags": {"chunk": 3}}
        trace.add(dict(payload))
        retry = trace.add(dict(payload), retry=1)
        assert retry.span_id == "chunk-3#r1"
        assert retry.tags["retry"] == 1
        assert len(trace.spans()) == 2
        assert trace.chunk_coverage() == {3: 2}

    def test_duplicate_ids_get_dup_suffix(self, clock):
        trace = Trace()
        payload = {"span_id": "chunk-0", "name": "chunk",
                   "start": 0.0, "end": 1.0, "tags": {"chunk": 0}}
        trace.add(dict(payload))
        dup = trace.add(dict(payload))
        assert dup.span_id == "chunk-0#dup1"

    def test_spans_sorted_by_start_then_id(self, clock):
        trace = Trace()
        trace.add({"span_id": "b", "name": "x", "start": 2.0, "end": 3.0,
                   "tags": {}})
        trace.add({"span_id": "a", "name": "x", "start": 1.0, "end": 2.0,
                   "tags": {}})
        trace.add({"span_id": "a2", "name": "x", "start": 1.0, "end": 2.0,
                   "tags": {}})
        assert [s.span_id for s in trace.spans()] == ["a", "a2", "b"]

    def test_chunk_coverage_ignores_non_chunk_spans(self, clock):
        trace = Trace()
        with trace.span("dispatch"):
            pass
        trace.add({"span_id": "chunk-1", "name": "chunk", "start": 0.0,
                   "end": 1.0, "tags": {"chunk": 1}})
        assert trace.chunk_coverage() == {1: 1}

    def test_to_dict_and_report(self, clock):
        trace = Trace("request", tags={"model": "m"})
        with trace.span("batch", rows=64):
            clock.advance(0.25)
        trace.finish()
        payload = trace.to_dict()
        assert payload["trace_id"] == trace.trace_id
        assert payload["root"]["tags"] == {"model": "m"}
        assert len(payload["spans"]) == 1
        report = trace.report()
        assert "batch" in report and trace.trace_id in report

    def test_trace_ids_are_unique(self, clock):
        assert Trace().trace_id != Trace().trace_id

    def test_not_picklable(self, clock):
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(Trace())
