"""repro.obs.export: Prometheus text exposition + JSON rendering."""

import json
import math

import pytest

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE, parse_prometheus, render_json,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _sample_map(text, name):
    return {tuple(sorted(labels.items())): value
            for labels, value in parse_prometheus(text)[name]}


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""
        assert parse_prometheus("") == {}

    def test_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "Things that\nhappened.").inc()
        text = render_prometheus(registry.snapshot())
        assert "# HELP events_total Things that\\nhappened." in text
        assert "# TYPE events_total counter" in text
        assert text.endswith("\n")

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("rows_total", "Rows.",
                                   labelnames=("model",))
        nasty = 'a"b\\c\nd'
        counter.inc(2, model=nasty)
        text = render_prometheus(registry.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        ((labels, value),) = parse_prometheus(text)["rows_total"]
        assert labels == {"model": nasty}
        assert value == 2

    def test_integer_values_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "E.").inc(5)
        text = render_prometheus(registry.snapshot())
        assert "events_total 5\n" in text

    def test_histogram_buckets_are_cumulative_and_end_in_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "L.",
                                  buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.7, 1.5, 3.0, 100.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        buckets = _sample_map(text, "latency_seconds_bucket")
        assert buckets[(("le", "1"),)] == 2
        assert buckets[(("le", "2"),)] == 3
        assert buckets[(("le", "4"),)] == 4
        assert buckets[(("le", "+Inf"),)] == 5
        counts = _sample_map(text, "latency_seconds_count")
        assert counts[()] == 5  # +Inf bucket == _count
        sums = _sample_map(text, "latency_seconds_sum")
        assert sums[()] == pytest.approx(105.7)

    def test_histogram_labels_compose_with_le(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "L.",
                                  labelnames=("model",), buckets=(1.0,))
        hist.observe(0.5, model="m")
        text = render_prometheus(registry.snapshot())
        buckets = parse_prometheus(text)["latency_seconds_bucket"]
        assert ({"model": "m", "le": "1"}, 1.0) in buckets
        assert ({"model": "m", "le": "+Inf"}, 1.0) in buckets

    def test_rendering_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            counter = registry.counter("b_total", "B.",
                                       labelnames=("x",))
            counter.inc(1, x="2")
            counter.inc(1, x="1")
            registry.gauge("a_level", "A.").set(3)
            return registry.snapshot()

        assert render_prometheus(build()) == render_prometheus(build())

    def test_content_type_pins_the_exposition_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestRenderJson:
    def test_document_shape(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", "Rows.",
                         labelnames=("model",)).inc(4, model="m")
        registry.histogram("latency", "L.", buckets=(1.0,)).observe(0.5)
        document = json.loads(render_json(registry.snapshot()))
        assert document["rows_total"]["type"] == "counter"
        assert document["rows_total"]["samples"] == [
            {"labels": {"model": "m"}, "value": 4.0}]
        hist = document["latency"]
        assert hist["buckets"] == [1.0]
        assert hist["samples"][0]["counts"] == [1, 0]
        assert hist["samples"][0]["count"] == 1


class TestParsePrometheus:
    def test_inf_values(self):
        parsed = parse_prometheus('x_bucket{le="+Inf"} 3\ny -Inf\n')
        assert parsed["x_bucket"] == [({"le": "+Inf"}, 3.0)]
        assert parsed["y"] == [({}, -math.inf)]

    def test_unquoted_label_rejected(self):
        with pytest.raises(ValueError, match="quoted"):
            parse_prometheus("x{le=1} 3\n")
