"""VAE snapshot parity: lazy per-epoch snapshots + facade selection.

The GAN family has had per-epoch generator snapshots (with the lazy
``keep_snapshots=False`` memory win) since PR 2; this suite pins the
same machinery on :class:`VAESynthesizer` so
``repro.synthesize(table, method="vae", valid=...)`` can pick the best
epoch.
"""

import numpy as np
import pytest

from repro.api.facade import synthesize
from repro.errors import TrainingError
from repro.vae import VAESynthesizer

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=240, seed=6)


class TestVAESnapshots:
    def test_snapshots_per_epoch(self, table):
        synth = VAESynthesizer(epochs=3, iterations_per_epoch=2, seed=0)
        assert not synth.supports_snapshots
        synth.fit(table)
        assert synth.supports_snapshots
        assert len(synth.snapshots) == 3
        assert all(snapshot is not None for snapshot in synth.snapshots)
        assert synth.active_snapshot == 2

    def test_use_snapshot_changes_output(self, table):
        synth = VAESynthesizer(epochs=3, iterations_per_epoch=4,
                               seed=0).fit(table)
        last = synth.sample(50, seed=1)
        synth.use_snapshot(0)
        assert synth.active_snapshot == 0
        first = synth.sample(50, seed=1)
        stacked = [np.concatenate([first.column(n).astype(float),
                                   last.column(n).astype(float)])
                   for n in table.schema.names]
        assert any(not np.array_equal(s[:50], s[50:]) for s in stacked)
        # Re-activating the final snapshot restores the trained model.
        synth.use_snapshot(-1)
        again = synth.sample(50, seed=1)
        for name in table.schema.names:
            np.testing.assert_array_equal(again.column(name),
                                          last.column(name))

    def test_lazy_snapshots_keep_only_final(self, table):
        synth = VAESynthesizer(epochs=3, iterations_per_epoch=2,
                               keep_snapshots=False, seed=0).fit(table)
        assert [s is not None for s in synth.snapshots] == [
            False, False, True]
        with pytest.raises(TrainingError, match="not snapshotted"):
            synth.use_snapshot(0)
        synth.use_snapshot(2)  # the final epoch is always available

    def test_out_of_range_snapshot(self, table):
        synth = VAESynthesizer(epochs=2, iterations_per_epoch=2,
                               seed=0).fit(table)
        with pytest.raises(IndexError):
            synth.use_snapshot(5)

    def test_save_load_keeps_active_snapshot(self, table, tmp_path):
        synth = VAESynthesizer(epochs=3, iterations_per_epoch=2,
                               seed=0).fit(table)
        synth.use_snapshot(1)
        synth.save(tmp_path / "vae")
        restored = VAESynthesizer.load(tmp_path / "vae")
        assert restored.active_snapshot == 1
        for name in table.schema.names:
            np.testing.assert_array_equal(
                synth.sample(30, seed=7).column(name),
                restored.sample(30, seed=7).column(name))


class TestVAEFacadeSelection:
    def test_synthesize_with_valid_selects_epoch(self, table):
        from repro import datasets

        train, valid, _ = datasets.split(table, seed=0)
        result = synthesize(train, method="vae", valid=valid, epochs=3,
                            iterations_per_epoch=4, seed=0)
        assert result.best_epoch is not None
        assert len(result.curves["selection"]) == 3
        assert result.best_epoch == int(np.argmax(result.curves["selection"]))
        assert result.synthesizer.active_snapshot == result.best_epoch

    def test_synthesize_without_valid_is_lazy(self, table):
        result = synthesize(table, method="vae", epochs=3,
                            iterations_per_epoch=2, seed=0, n=30)
        # The facade defaults keep_snapshots=False without a validation
        # table: only the final epoch is deep-copied.
        snapshots = result.synthesizer.snapshots
        assert [s is not None for s in snapshots] == [False, False, True]
