"""VAE baseline: model pieces and synthesizer."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Tensor
from repro.transform import RecordTransformer
from repro.vae import VAEModel, VAESynthesizer, elbo_loss, reconstruction_loss

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=300, seed=4)


@pytest.fixture(scope="module")
def fitted(table):
    rt = RecordTransformer("onehot", "simple",
                           rng=np.random.default_rng(0)).fit(table)
    return rt, rt.transform(table)


class TestVAEModel:
    def test_encode_decode_shapes(self, fitted, rng):
        rt, data = fitted
        model = VAEModel(rt.blocks, latent_dim=8, rng=rng)
        x = Tensor(data[:16])
        mu, logvar = model.encode(x)
        assert mu.shape == (16, 8)
        assert logvar.shape == (16, 8)
        out = model.decode(mu)
        assert out.shape == (16, rt.output_dim)

    def test_reconstruction_loss_zero_for_perfect(self, fitted):
        rt, data = fitted
        # A perfect reconstruction has zero CE (one-hot targets pick the
        # log of probability one) and zero numeric MSE.
        target = data[:8]
        loss = reconstruction_loss(Tensor(target.copy()), target, rt.blocks)
        assert float(loss.data) < 0.01

    def test_elbo_decreases_under_training(self, fitted, rng):
        from repro.nn import Adam

        rt, data = fitted
        model = VAEModel(rt.blocks, latent_dim=8, rng=rng)
        opt = Adam(model.parameters(), lr=2e-3)
        train_rng = np.random.default_rng(0)
        losses = []
        for _ in range(60):
            batch = data[train_rng.integers(0, len(data), 32)]
            opt.zero_grad()
            pred, mu, logvar = model(Tensor(batch), train_rng)
            loss = elbo_loss(pred, batch, mu, logvar, rt.blocks,
                             kl_weight=0.2)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_reparameterization_uses_noise(self, fitted, rng):
        rt, data = fitted
        model = VAEModel(rt.blocks, latent_dim=8, rng=rng)
        mu = Tensor(np.zeros((4, 8)))
        logvar = Tensor(np.zeros((4, 8)))
        z1 = model.reparameterize(mu, logvar, np.random.default_rng(1))
        z2 = model.reparameterize(mu, logvar, np.random.default_rng(2))
        assert not np.allclose(z1.data, z2.data)


class TestVAESynthesizer:
    def test_fit_sample_schema(self, table):
        synth = VAESynthesizer(epochs=2, iterations_per_epoch=5, seed=0)
        synth.fit(table)
        fake = synth.sample(40)
        assert fake.schema.names == table.schema.names
        assert len(fake) == 40

    def test_losses_recorded(self, table):
        synth = VAESynthesizer(epochs=2, iterations_per_epoch=5, seed=0)
        synth.fit(table)
        assert len(synth.losses) == 10

    def test_unfitted_raises(self):
        with pytest.raises(TrainingError):
            VAESynthesizer().sample(5)

    def test_label_not_degenerate_with_training(self, table):
        synth = VAESynthesizer(epochs=6, iterations_per_epoch=40,
                               kl_weight=0.1, seed=0)
        synth.fit(table)
        fake = synth.sample(300)
        assert len(np.unique(fake.label_codes)) == 2
