"""PrivBayes: discretizer, network learning, synthesizer, DP behaviour."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.privbayes import (
    BayesianNetwork, EquiWidthDiscretizer, NodeSpec, PrivBayesSynthesizer,
    joint_encode, learn_structure, mutual_information,
)

from tests.conftest import make_mixed_table


class TestDiscretizer:
    def test_bins_cover_range(self, rng):
        values = rng.uniform(0, 100, 500)
        disc = EquiWidthDiscretizer(n_bins=10).fit(values)
        bins = disc.transform(values)
        assert bins.min() == 0
        assert bins.max() == 9

    def test_inverse_lands_in_bin(self, rng):
        values = rng.uniform(0, 100, 200)
        disc = EquiWidthDiscretizer(n_bins=10).fit(values)
        bins = disc.transform(values)
        decoded = disc.inverse(bins, rng=rng)
        np.testing.assert_array_equal(disc.transform(decoded), bins)

    def test_integral_rounding(self, rng):
        disc = EquiWidthDiscretizer(n_bins=4, integral=True).fit(
            np.arange(100.0))
        decoded = disc.inverse(np.array([0, 3]), rng=rng)
        np.testing.assert_allclose(decoded, np.rint(decoded))

    def test_constant_column(self, rng):
        disc = EquiWidthDiscretizer(n_bins=5).fit(np.full(10, 3.0))
        assert disc.transform(np.array([3.0]))[0] == 0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            EquiWidthDiscretizer(n_bins=0)


class TestMutualInformation:
    def test_identical_columns_high_mi(self, rng):
        x = rng.integers(0, 4, 2000)
        mi = mutual_information(x, x, 4, 4)
        # MI(X,X) = H(X) ~ log 4 for uniform.
        assert mi == pytest.approx(np.log(4), abs=0.05)

    def test_independent_columns_near_zero(self, rng):
        x = rng.integers(0, 4, 5000)
        y = rng.integers(0, 3, 5000)
        assert mutual_information(x, y, 4, 3) < 0.01

    def test_joint_encode_bijective(self, rng):
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 4, 100)
        code, size = joint_encode([a, b], [3, 4])
        assert size == 12
        # Distinct (a, b) pairs map to distinct codes.
        pairs = set(zip(a.tolist(), b.tolist()))
        assert len(set(code.tolist())) == len(pairs)

    def test_joint_encode_empty_with_rows(self):
        code, size = joint_encode([], [], n_rows=7)
        assert size == 1
        assert code.shape == (7,)
        assert (code == 0).all()


class TestStructureLearning:
    def test_chain_recovered_without_noise(self, rng):
        # a0 -> a1 -> a2 strongly correlated chain.
        n = 4000
        a0 = rng.integers(0, 3, n)
        flip = rng.random(n) < 0.05
        a1 = np.where(flip, rng.integers(0, 3, n), a0)
        a2 = np.where(rng.random(n) < 0.05, rng.integers(0, 3, n), a1)
        noise = rng.integers(0, 3, n)
        data = {"a0": a0, "a1": a1, "a2": a2, "noise": noise}
        nodes = [NodeSpec(k, 3) for k in data]
        net = learn_structure(data, nodes, degree=1, epsilon=None, rng=rng)
        # The noise column must not be chosen as anyone's parent.
        for child, parents in net.parents.items():
            assert "noise" not in parents or child == "noise"

    def test_parent_count_bounded_by_degree(self, rng):
        data = {f"c{i}": rng.integers(0, 2, 500) for i in range(5)}
        nodes = [NodeSpec(k, 2) for k in data]
        net = learn_structure(data, nodes, degree=2, epsilon=None, rng=rng)
        assert max(len(p) for p in net.parents.values()) <= 2

    def test_structure_is_dag_with_noise(self, rng):
        data = {f"c{i}": rng.integers(0, 3, 300) for i in range(4)}
        nodes = [NodeSpec(k, 3) for k in data]
        net = learn_structure(data, nodes, degree=2, epsilon=0.5, rng=rng)
        order = net.order
        assert len(order) == 4

    def test_invalid_dag_rejected(self):
        nodes = [NodeSpec("a", 2), NodeSpec("b", 2)]
        with pytest.raises(ValueError):
            BayesianNetwork(nodes, {"a": ["b"], "b": ["a"]})


class TestPrivBayesSynthesizer:
    def test_fit_sample_schema(self):
        table = make_mixed_table(n=400, seed=0)
        synth = PrivBayesSynthesizer(epsilon=None, seed=0).fit(table)
        fake = synth.sample(200)
        assert fake.schema.names == table.schema.names
        assert len(fake) == 200

    def test_noise_free_preserves_marginals(self):
        table = make_mixed_table(n=2000, seed=0)
        synth = PrivBayesSynthesizer(epsilon=None, seed=0).fit(table)
        fake = synth.sample(2000)
        real_rate = table.label_codes.mean()
        fake_rate = fake.label_codes.mean()
        assert abs(real_rate - fake_rate) < 0.08

    def test_more_privacy_means_more_distortion(self):
        """Marginal error should grow as epsilon shrinks (on average)."""
        table = make_mixed_table(n=800, seed=0)

        def marginal_error(eps, trials=3):
            errs = []
            for t in range(trials):
                synth = PrivBayesSynthesizer(epsilon=eps, seed=t).fit(table)
                fake = synth.sample(800)
                real = np.bincount(table.column("job"), minlength=3) / 800
                synth_dist = np.bincount(fake.column("job"),
                                         minlength=3) / 800
                errs.append(np.abs(real - synth_dist).sum())
            return np.mean(errs)

        assert marginal_error(0.05) > marginal_error(None, trials=1) - 0.02

    def test_unfitted_raises(self):
        with pytest.raises(TrainingError):
            PrivBayesSynthesizer().sample(5)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PrivBayesSynthesizer(epsilon=-1.0)

    def test_numeric_values_within_range(self):
        table = make_mixed_table(n=500, seed=0)
        synth = PrivBayesSynthesizer(epsilon=None, seed=0).fit(table)
        fake = synth.sample(500)
        real = table.column("age")
        col = fake.column("age")
        margin = (real.max() - real.min()) / 16 + 1e-9
        assert col.min() >= real.min() - margin
        assert col.max() <= real.max() + margin
