"""Random forest, AdaBoost, logistic regression."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier, LogisticRegression, RandomForestClassifier,
)


def blobs(rng, n=300, gap=3.0):
    y = rng.integers(0, 2, n)
    X = rng.normal(size=(n, 4)) + gap * y[:, None]
    return X, y


class TestRandomForest:
    def test_fits_separable_data(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(n_estimators=10, max_depth=5,
                                        rng=rng).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.97

    def test_proba_shape_and_normalization(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(n_estimators=5, rng=rng).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (len(X), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_more_trees_than_one(self, rng):
        X, y = blobs(rng, gap=1.0)
        forest = RandomForestClassifier(n_estimators=15, rng=rng).fit(X, y)
        assert len(forest.trees) == 15

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            RandomForestClassifier(rng=rng).predict_proba(np.zeros((1, 2)))

    def test_multiclass_bootstrap_missing_class(self, rng):
        """Bootstraps may miss a rare class; proba must still align."""
        X = rng.normal(size=(100, 2))
        y = np.zeros(100, dtype=np.int64)
        y[:3] = 2  # rare highest class
        forest = RandomForestClassifier(n_estimators=8, rng=rng).fit(X, y)
        assert forest.predict_proba(X).shape == (100, 3)


class TestAdaBoost:
    def test_boosting_beats_single_stump(self, rng):
        # Nested means a stump underfits but boosting succeeds.
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
        boost = AdaBoostClassifier(n_estimators=40, max_depth=2,
                                   rng=rng).fit(X, y)
        assert (boost.predict(X) == y).mean() > 0.9

    def test_alphas_positive_for_useful_learners(self, rng):
        X, y = blobs(rng)
        boost = AdaBoostClassifier(n_estimators=10, rng=rng).fit(X, y)
        assert all(a > 0 for a in boost.alphas)

    def test_early_stop_on_perfect_learner(self, rng):
        X, y = blobs(rng, gap=50.0)
        boost = AdaBoostClassifier(n_estimators=30, max_depth=3,
                                   rng=rng).fit(X, y)
        assert len(boost.estimators) < 30

    def test_multiclass_samme(self, rng):
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(np.int64) + 2 * (X[:, 1] > 0)
        boost = AdaBoostClassifier(n_estimators=40, max_depth=2,
                                   rng=rng).fit(X, y)
        assert (boost.predict(X) == y).mean() > 0.85

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            AdaBoostClassifier(rng=rng).predict(np.zeros((1, 2)))


class TestLogisticRegression:
    def test_linearly_separable(self, rng):
        X, y = blobs(rng, gap=4.0)
        model = LogisticRegression().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.98

    def test_proba_calibrated_direction(self, rng):
        X, y = blobs(rng, gap=4.0)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba[y == 1, 1].mean() > proba[y == 0, 1].mean()

    def test_multiclass(self, rng):
        X = rng.normal(size=(400, 2))
        y = (X[:, 0] > 0).astype(np.int64) + 2 * (X[:, 1] > 0)
        model = LogisticRegression(max_iter=500).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_l2_shrinks_weights(self, rng):
        X, y = blobs(rng, gap=2.0)
        loose = LogisticRegression(l2=1e-6).fit(X, y)
        tight = LogisticRegression(l2=1.0).fit(X, y)
        assert np.abs(tight.weights).sum() < np.abs(loose.weights).sum()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))
