"""CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier


def xor_data(rng, n=400, noise=0.0):
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    if noise:
        flip = rng.random(n) < noise
        y[flip] = 1 - y[flip]
    return X, y


class TestDecisionTree:
    def test_fits_xor_perfectly(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=4, rng=rng).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98

    def test_depth_limit_respected(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=3, rng=rng).fit(X, y)
        assert tree.depth() <= 3

    def test_depth_one_is_a_stump(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=1, rng=rng).fit(X, y)
        assert tree.depth() <= 1
        # A stump cannot solve XOR.
        assert (tree.predict(X) == y).mean() < 0.75

    def test_proba_rows_sum_to_one(self, rng):
        X, y = xor_data(rng, noise=0.2)
        tree = DecisionTreeClassifier(max_depth=5, rng=rng).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_multiclass(self, rng):
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(np.int64) + 2 * (X[:, 1] > 0)
        tree = DecisionTreeClassifier(max_depth=6, rng=rng).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95
        assert tree.predict_proba(X).shape == (300, 4)

    def test_sample_weight_shifts_decisions(self, rng):
        # Two overlapping classes; upweighting class 1 should raise recall.
        X = rng.normal(size=(500, 1))
        y = (X[:, 0] + rng.normal(0, 1.0, 500) > 0).astype(np.int64)
        unweighted = DecisionTreeClassifier(max_depth=2, rng=rng).fit(X, y)
        weights = np.where(y == 1, 10.0, 1.0)
        weighted = DecisionTreeClassifier(max_depth=2, rng=rng).fit(
            X, y, sample_weight=weights)
        recall_unweighted = (unweighted.predict(X)[y == 1] == 1).mean()
        recall_weighted = (weighted.predict(X)[y == 1] == 1).mean()
        assert recall_weighted >= recall_unweighted

    def test_pure_node_stops_early(self, rng):
        X = rng.normal(size=(50, 2))
        y = np.zeros(50, dtype=np.int64)
        tree = DecisionTreeClassifier(max_depth=10, rng=rng).fit(X, y)
        assert tree.n_nodes == 1

    def test_constant_features_yield_single_leaf(self, rng):
        X = np.ones((40, 3))
        y = rng.integers(0, 2, 40)
        tree = DecisionTreeClassifier(max_depth=5, rng=rng).fit(X, y)
        assert tree.n_nodes == 1

    def test_min_samples_leaf(self, rng):
        X, y = xor_data(rng, n=100)
        tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=30,
                                      rng=rng).fit(X, y)
        # Every leaf holds >= 30 samples, so there are at most 3 splits.
        assert tree.n_nodes <= 7

    def test_empty_data_raises(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(rng=rng).fit(np.zeros((0, 2)),
                                                np.zeros(0, dtype=np.int64))

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier(rng=rng).predict(np.zeros((1, 2)))

    def test_max_features_sqrt(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=6, max_features="sqrt",
                                      rng=rng).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.8
