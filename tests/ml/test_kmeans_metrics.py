"""K-Means, evaluation metrics, and the feature encoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.ml import (
    CLASSIFIERS, FeatureEncoder, KMeans, accuracy, f1_score, macro_f1,
    make_classifier, normalized_mutual_info, paper_f1, precision_score,
    rare_label, recall_score, roc_auc,
)

from tests.conftest import make_mixed_table


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = np.array([[0, 0], [10, 10], [-10, 10]])
        X = np.vstack([rng.normal(c, 0.5, size=(50, 2)) for c in centers])
        km = KMeans(n_clusters=3, rng=rng).fit(X)
        labels = km.labels_
        # Each blob maps to exactly one cluster.
        for i in range(3):
            blob = labels[i * 50:(i + 1) * 50]
            assert len(np.unique(blob)) == 1
        assert len(np.unique(labels)) == 3

    def test_predict_matches_fit_labels(self, rng):
        X = rng.normal(size=(100, 3))
        km = KMeans(n_clusters=4, rng=rng).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels_)

    def test_inertia_decreases_with_more_clusters(self, rng):
        X = rng.normal(size=(200, 2))
        inertia2 = KMeans(n_clusters=2, rng=rng).fit(X).inertia
        inertia8 = KMeans(n_clusters=8, rng=rng).fit(X).inertia
        assert inertia8 < inertia2

    def test_fewer_samples_than_clusters_raises(self, rng):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10, rng=rng).fit(np.zeros((3, 2)))

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)


class TestF1Family:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 1, 0])
        assert f1_score(y, y) == pytest.approx(1.0)
        assert precision_score(y, y) == pytest.approx(1.0)
        assert recall_score(y, y) == pytest.approx(1.0)

    def test_known_values(self):
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0])
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        assert f1_score(np.array([1, 1]), np.array([0, 0])) == 0.0

    def test_macro_f1_averages_classes(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 0])
        # class 0: P=0.5 R=1 F1=2/3 ; class 1: F1=0
        assert macro_f1(y_true, y_pred) == pytest.approx(1 / 3)

    def test_rare_label(self):
        y = np.array([0, 0, 0, 1, 1, 2])
        assert rare_label(y) == 2

    def test_paper_f1_binary_uses_positive(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 1, 0])
        assert paper_f1(y_true, y_pred, n_classes=2) == pytest.approx(
            f1_score(y_true, y_pred, label=1))

    def test_paper_f1_multiclass_uses_rare(self):
        y_true = np.array([0] * 8 + [1] * 4 + [2])
        y_pred = y_true.copy()
        assert paper_f1(y_true, y_pred, n_classes=3) == pytest.approx(1.0)


class TestAUCAndNMI:
    def test_auc_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_auc_reverse_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_auc_random_is_half(self, rng):
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_auc_single_class_degenerate(self):
        assert roc_auc([1, 1], [0.1, 0.9]) == 0.5

    def test_nmi_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_nmi_independent_partitions(self, rng):
        a = rng.integers(0, 2, 5000)
        b = rng.integers(0, 2, 5000)
        assert normalized_mutual_info(a, b) < 0.01

    def test_nmi_symmetric(self, rng):
        a = rng.integers(0, 3, 200)
        b = rng.integers(0, 4, 200)
        assert normalized_mutual_info(a, b) == pytest.approx(
            normalized_mutual_info(b, a))

    def test_nmi_invariant_to_relabeling(self, rng):
        a = rng.integers(0, 3, 200)
        b = rng.integers(0, 3, 200)
        relabeled = (b + 1) % 3
        assert normalized_mutual_info(a, b) == pytest.approx(
            normalized_mutual_info(a, relabeled))

    def test_nmi_misaligned_raises(self):
        with pytest.raises(ValueError):
            normalized_mutual_info([0, 1], [0])

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)


class TestFeatureEncoder:
    def test_shapes(self, mixed_table):
        X, y = FeatureEncoder().fit_transform(mixed_table)
        # 2 numeric + onehot(3) + onehot(4)
        assert X.shape == (len(mixed_table), 2 + 3 + 4)
        assert y.shape == (len(mixed_table),)

    def test_standardizes_numeric(self, mixed_table):
        X, _ = FeatureEncoder().fit_transform(mixed_table)
        np.testing.assert_allclose(X[:, 0].mean(), 0.0, atol=1e-9)
        np.testing.assert_allclose(X[:, 0].std(), 1.0, atol=1e-6)

    def test_transform_other_table_aligned(self):
        a = make_mixed_table(n=100, seed=1)
        b = make_mixed_table(n=50, seed=2)
        encoder = FeatureEncoder().fit(a)
        Xa, _ = encoder.transform(a)
        Xb, _ = encoder.transform(b)
        assert Xa.shape[1] == Xb.shape[1]

    def test_schema_mismatch_raises(self, mixed_table, numeric_table):
        encoder = FeatureEncoder().fit(mixed_table)
        with pytest.raises(SchemaError):
            encoder.transform(numeric_table)

    def test_unfitted_raises(self, mixed_table):
        with pytest.raises(RuntimeError):
            FeatureEncoder().transform(mixed_table)


class TestClassifierRegistry:
    @pytest.mark.parametrize("name", CLASSIFIERS)
    def test_all_paper_classifiers_instantiate_and_fit(self, name, rng):
        X = rng.normal(size=(80, 3)) + rng.integers(0, 2, 80)[:, None] * 3
        y = (X[:, 0] > 1.5).astype(np.int64)
        model = make_classifier(name, rng=rng)
        model.fit(X, y)
        assert (model.predict(X) == y).mean() > 0.8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_classifier("SVM")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=2, max_size=40),
       st.lists(st.integers(0, 1), min_size=2, max_size=40))
def test_property_f1_bounded(y_true, y_pred):
    n = min(len(y_true), len(y_pred))
    score = f1_score(np.array(y_true[:n]), np.array(y_pred[:n]))
    assert 0.0 <= score <= 1.0
