"""AQP substrate: query model, engine, workload, error metric."""

import numpy as np
import pytest

from repro.aqp import (
    AVG, COUNT, SUM, CategoricalPredicate, Query, RangePredicate, diff_aqp,
    execute, generate_workload, relative_error, workload_errors,
)
from repro.errors import QueryError

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=500, seed=9)


class TestQueryModel:
    def test_count_rejects_target(self):
        with pytest.raises(QueryError):
            Query(aggregate=COUNT, target="age")

    def test_sum_requires_target(self):
        with pytest.raises(QueryError):
            Query(aggregate=SUM)

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            Query(aggregate="median", target="age")

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            RangePredicate("age", 10.0, 5.0)

    def test_describe_is_readable(self):
        q = Query(aggregate=AVG, target="age",
                  predicates=(CategoricalPredicate("job", 1),),
                  group_by="city")
        text = q.describe()
        assert "avg(age)" in text
        assert "job=1" in text
        assert "group by city" in text


class TestEngine:
    def test_count_all(self, table):
        assert execute(Query(aggregate=COUNT), table) == len(table)

    def test_count_with_predicate(self, table):
        q = Query(aggregate=COUNT,
                  predicates=(CategoricalPredicate("job", 0),))
        assert execute(q, table) == float((table.column("job") == 0).sum())

    def test_sum_and_avg(self, table):
        mask = table.column("age") >= 40.0
        q_sum = Query(aggregate=SUM, target="income",
                      predicates=(RangePredicate("age", 40.0, 1e9),))
        q_avg = Query(aggregate=AVG, target="income",
                      predicates=(RangePredicate("age", 40.0, 1e9),))
        assert execute(q_sum, table) == pytest.approx(
            table.column("income")[mask].sum())
        assert execute(q_avg, table) == pytest.approx(
            table.column("income")[mask].mean())

    def test_conjunction(self, table):
        q = Query(aggregate=COUNT,
                  predicates=(CategoricalPredicate("job", 0),
                              RangePredicate("age", 30.0, 50.0)))
        expected = ((table.column("job") == 0)
                    & (table.column("age") >= 30.0)
                    & (table.column("age") <= 50.0)).sum()
        assert execute(q, table) == float(expected)

    def test_group_by(self, table):
        q = Query(aggregate=COUNT, group_by="job")
        result = execute(q, table)
        assert sum(result.values()) == len(table)
        for code, count in result.items():
            assert count == float((table.column("job") == code).sum())

    def test_empty_selection(self, table):
        q = Query(aggregate=AVG, target="age",
                  predicates=(RangePredicate("age", 1e8, 1e9),))
        assert execute(q, table) == 0.0

    def test_unknown_column(self, table):
        q = Query(aggregate=COUNT,
                  predicates=(CategoricalPredicate("nope", 0),))
        with pytest.raises(Exception):
            execute(q, table)


class TestWorkload:
    def test_size_and_validity(self, table):
        queries = generate_workload(table, n_queries=50, seed=3)
        assert len(queries) == 50
        for q in queries:
            execute(q, table)  # must not raise

    def test_predicate_columns_distinct(self, table):
        for q in generate_workload(table, n_queries=80, seed=1):
            cols = [p.column for p in q.predicates]
            assert len(cols) == len(set(cols))

    def test_most_queries_nonempty(self, table):
        queries = generate_workload(table, n_queries=100, seed=5)
        nonempty = 0
        for q in queries:
            result = execute(Query(aggregate=COUNT,
                                   predicates=q.predicates), table)
            nonempty += result > 0
        assert nonempty > 60

    def test_deterministic_by_seed(self, table):
        a = generate_workload(table, n_queries=10, seed=7)
        b = generate_workload(table, n_queries=10, seed=7)
        assert [q.describe() for q in a] == [q.describe() for q in b]


class TestErrorMetric:
    def test_relative_error_scalar(self):
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(5.0, 0.0) == 1.0

    def test_relative_error_groups(self):
        truth = {0: 10.0, 1: 20.0}
        estimate = {0: 9.0}
        # group 0: 0.1 ; group 1 missing: 1.0
        assert relative_error(estimate, truth) == pytest.approx(0.55)

    def test_identical_tables_zero_error(self, table):
        queries = generate_workload(table, n_queries=20, seed=0)
        errors = workload_errors(queries, table, table)
        np.testing.assert_allclose(errors, 0.0)

    def test_diff_aqp_identical_synthetic_beats_sample(self, table):
        """T' == T answers exactly, so DiffAQP equals the sample error."""
        queries = generate_workload(table, n_queries=20, seed=0)
        diff = diff_aqp(queries, table, table, sample_fraction=0.05,
                        n_sample_draws=2, seed=0)
        assert diff >= 0.0

    def test_garbage_synthetic_has_larger_workload_error(self, table):
        queries = generate_workload(table, n_queries=30, seed=0)
        # Shuffled-columns synthetic destroys correlations.
        rng = np.random.default_rng(0)
        shuffled_cols = {name: rng.permutation(col)
                         for name, col in table.columns.items()}
        from repro.datasets.schema import Table
        garbage = Table(table.schema, shuffled_cols)
        err_garbage = np.mean(workload_errors(queries, garbage, table))
        err_perfect = np.mean(workload_errors(queries, table, table))
        assert err_perfect == pytest.approx(0.0)
        assert err_garbage > 0.05

    def test_diff_aqp_with_generous_sample(self, table):
        """With a 20% sample the sample error is small, so a perfect
        synthetic table yields a small DiffAQP."""
        queries = generate_workload(table, n_queries=30, seed=0)
        diff = diff_aqp(queries, table, table, sample_fraction=0.2,
                        n_sample_draws=3, seed=0)
        assert diff < 0.5
