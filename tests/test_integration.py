"""Cross-module integration: full synthesize-evaluate loops per method.

These are the library's end-to-end guarantees: every synthesizer family
can fit a mixed-type table, produce a schema-valid synthetic table, and
be pushed through every utility and privacy evaluation.
"""

import numpy as np
import pytest

from repro import datasets
from repro.core import (
    DesignConfig, aqp_utility, classification_utility, clustering_utility,
    privacy_report, run_gan_synthesis,
)
from repro.privbayes import PrivBayesSynthesizer
from repro.vae import VAESynthesizer


@pytest.fixture(scope="module")
def split():
    table = datasets.load("adult", n_records=600, seed=0)
    return datasets.split(table, seed=0)


@pytest.fixture(scope="module")
def gan_synthetic(split):
    train, valid, _ = split
    run = run_gan_synthesis(DesignConfig(), train, valid, epochs=3,
                            iterations_per_epoch=10, seed=0)
    return run.synthetic


class TestGANEndToEnd:
    def test_full_evaluation_stack(self, split, gan_synthetic):
        train, _, test = split
        result = classification_utility(gan_synthetic, train, test, "DT10")
        assert 0.0 <= result.diff <= 1.0
        assert 0.0 <= clustering_utility(gan_synthetic, train) <= 1.0
        assert aqp_utility(gan_synthetic, train, n_queries=20,
                           n_sample_draws=2) >= 0.0
        report = privacy_report(gan_synthetic, train, hit_samples=100,
                                dcr_samples=100)
        assert 0.0 <= report.hitting_rate <= 1.0
        assert report.dcr >= 0.0

    def test_gan_is_not_memorizing(self, split, gan_synthetic):
        """No one-to-one record correspondence (the paper's privacy claim)."""
        train, _, _ = split
        report = privacy_report(gan_synthetic, train, hit_samples=150,
                                dcr_samples=100)
        assert report.dcr > 0.0


class TestBaselinesEndToEnd:
    def test_vae(self, split):
        train, _, test = split
        synth = VAESynthesizer(epochs=3, iterations_per_epoch=10, seed=0)
        fake = synth.fit(train).sample(len(train))
        assert fake.schema.names == train.schema.names
        result = classification_utility(fake, train, test, "DT10")
        assert 0.0 <= result.diff <= 1.0

    def test_privbayes_eps_sweep_is_usable(self, split):
        train, _, test = split
        for eps in (0.2, 1.6, None):
            fake = PrivBayesSynthesizer(epsilon=eps, seed=0).fit(
                train).sample(len(train))
            assert len(fake) == len(train)

    def test_all_generator_families_run(self, split):
        train, valid, _ = split
        for config in (
            DesignConfig(generator="mlp"),
            DesignConfig(generator="lstm"),
            DesignConfig(generator="cnn", categorical_encoding="ordinal",
                         numerical_normalization="simple"),
        ):
            run = run_gan_synthesis(config, train, valid, epochs=1,
                                    iterations_per_epoch=3, seed=0)
            assert len(run.synthetic) == len(train)


class TestDatasetsIntegration:
    @pytest.mark.parametrize("name", ["covtype", "census"])
    def test_multilabel_datasets_flow(self, name):
        table = datasets.load(name, n_records=400, seed=0)
        train, valid, test = datasets.split(table, seed=0)
        run = run_gan_synthesis(DesignConfig(), train, valid, epochs=1,
                                iterations_per_epoch=3, seed=0)
        result = classification_utility(run.synthetic, train, test, "DT10")
        assert 0.0 <= result.diff <= 1.0

    def test_unlabeled_bing_for_aqp(self):
        table = datasets.load("bing", n_records=400, seed=0)
        train, _, _ = datasets.split(table, seed=0)
        from repro.gan import GANSynthesizer

        synth = GANSynthesizer(DesignConfig(), epochs=1,
                               iterations_per_epoch=3, seed=0).fit(train)
        fake = synth.sample(len(train))
        assert aqp_utility(fake, train, n_queries=15, n_sample_draws=2) >= 0.0
