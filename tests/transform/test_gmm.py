"""EM Gaussian mixture fitting."""

import numpy as np
import pytest

from repro.transform import GaussianMixture1D


class TestGaussianMixture1D:
    def test_recovers_two_well_separated_modes(self, rng):
        values = np.concatenate([rng.normal(-5, 0.5, 500),
                                 rng.normal(5, 0.5, 500)])
        gmm = GaussianMixture1D(n_components=2).fit(values, rng=rng)
        means = np.sort(gmm.means)
        np.testing.assert_allclose(means, [-5.0, 5.0], atol=0.3)
        np.testing.assert_allclose(np.sort(gmm.stds), [0.5, 0.5], atol=0.2)

    def test_weights_sum_to_one(self, rng):
        gmm = GaussianMixture1D(n_components=4).fit(rng.normal(size=300),
                                                    rng=rng)
        assert gmm.weights.sum() == pytest.approx(1.0)

    def test_posteriors_are_distributions(self, rng):
        values = rng.normal(size=200)
        gmm = GaussianMixture1D(n_components=3).fit(values, rng=rng)
        post = gmm.posteriors(values)
        assert post.shape == (200, gmm.n_components)
        np.testing.assert_allclose(post.sum(axis=1), 1.0)

    def test_assign_picks_nearest_mode(self, rng):
        values = np.concatenate([rng.normal(-8, 0.5, 100),
                                 rng.normal(8, 0.5, 100)])
        gmm = GaussianMixture1D(n_components=2).fit(values, rng=rng)
        assign_left = gmm.assign(np.array([-8.0]))[0]
        assign_right = gmm.assign(np.array([8.0]))[0]
        assert assign_left != assign_right

    def test_component_cap_by_unique_values(self, rng):
        gmm = GaussianMixture1D(n_components=10).fit(
            np.array([1.0, 2.0, 3.0] * 30), rng=rng)
        assert gmm.n_components <= 3

    def test_sampling_matches_fit_distribution(self, rng):
        values = np.concatenate([rng.normal(-5, 0.5, 500),
                                 rng.normal(5, 0.5, 500)])
        gmm = GaussianMixture1D(n_components=2).fit(values, rng=rng)
        samples = gmm.sample(2000, rng)
        # Both modes present in roughly equal proportion.
        left = (samples < 0).mean()
        assert 0.3 < left < 0.7

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            GaussianMixture1D().fit(np.array([]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture1D().posteriors(np.array([1.0]))

    def test_variance_floor_on_constant_data(self, rng):
        gmm = GaussianMixture1D(n_components=1).fit(np.full(50, 3.0),
                                                    rng=rng)
        assert gmm.stds[0] > 0
