"""Categorical encoders: ordinal, tanh-ordinal, one-hot."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransformError
from repro.transform import OneHotEncoder, OrdinalEncoder, TanhOrdinalEncoder
from repro.transform.base import HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH


class TestOrdinalEncoder:
    def test_scales_into_unit_interval(self):
        enc = OrdinalEncoder().fit(np.array([0, 1, 2, 3]))
        out = enc.transform(np.array([0, 3]))
        np.testing.assert_allclose(out.ravel(), [0.0, 1.0])

    def test_round_trip(self):
        codes = np.array([0, 2, 1, 3, 3, 0])
        enc = OrdinalEncoder().fit(codes)
        np.testing.assert_array_equal(enc.inverse(enc.transform(codes)),
                                      codes)

    def test_inverse_clips_out_of_range(self):
        enc = OrdinalEncoder().fit(np.array([0, 1, 2]))
        decoded = enc.inverse(np.array([[-0.4], [1.7]]))
        assert decoded.min() >= 0
        assert decoded.max() <= 2

    def test_head_and_width(self):
        enc = OrdinalEncoder().fit(np.array([0, 1]))
        assert enc.head == HEAD_SIGMOID
        assert enc.width == 1

    def test_single_category(self):
        enc = OrdinalEncoder().fit(np.array([0, 0, 0]))
        np.testing.assert_array_equal(
            enc.inverse(enc.transform(np.array([0]))), [0])

    def test_unfitted_raises(self):
        with pytest.raises(TransformError):
            OrdinalEncoder().transform(np.array([0]))

    def test_empty_fit_raises(self):
        with pytest.raises(TransformError):
            OrdinalEncoder().fit(np.array([], dtype=np.int64))


class TestTanhOrdinalEncoder:
    def test_range_is_symmetric(self):
        enc = TanhOrdinalEncoder().fit(np.array([0, 1, 2, 3, 4]))
        out = enc.transform(np.array([0, 2, 4])).ravel()
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0])

    def test_head_is_tanh(self):
        enc = TanhOrdinalEncoder().fit(np.array([0, 1]))
        assert enc.head == HEAD_TANH

    def test_round_trip(self):
        codes = np.array([4, 0, 2, 1, 3])
        enc = TanhOrdinalEncoder().fit(codes)
        np.testing.assert_array_equal(enc.inverse(enc.transform(codes)),
                                      codes)


class TestOneHotEncoder:
    def test_transform_shape_and_values(self):
        enc = OneHotEncoder().fit(np.array([0, 1, 2]))
        out = enc.transform(np.array([1, 0]))
        np.testing.assert_allclose(out, [[0, 1, 0], [1, 0, 0]])

    def test_round_trip(self):
        codes = np.array([2, 0, 1, 1, 2, 0])
        enc = OneHotEncoder().fit(codes)
        np.testing.assert_array_equal(enc.inverse(enc.transform(codes)),
                                      codes)

    def test_inverse_takes_argmax_of_soft_vectors(self):
        enc = OneHotEncoder().fit(np.array([0, 1, 2]))
        soft = np.array([[0.1, 0.7, 0.2], [0.5, 0.3, 0.2]])
        np.testing.assert_array_equal(enc.inverse(soft), [1, 0])

    def test_head_and_discreteness(self):
        enc = OneHotEncoder().fit(np.array([0, 1]))
        assert enc.head == HEAD_SOFTMAX
        assert enc.discrete_block

    def test_out_of_domain_code_raises(self):
        enc = OneHotEncoder().fit(np.array([0, 1]))
        with pytest.raises(TransformError):
            enc.transform(np.array([5]))

    def test_wrong_block_width_raises(self):
        enc = OneHotEncoder().fit(np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            enc.inverse(np.zeros((2, 2)))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=1, max_size=50))
def test_property_encoders_round_trip(codes):
    codes = np.array(codes, dtype=np.int64)
    for encoder_cls in (OrdinalEncoder, TanhOrdinalEncoder, OneHotEncoder):
        enc = encoder_cls().fit(codes)
        np.testing.assert_array_equal(enc.inverse(enc.transform(codes)),
                                      codes)
