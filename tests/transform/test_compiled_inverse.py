"""Vectorized (compiled) inverse vs the per-block reference path.

The compiled inverse must be **bit-identical** to walking the attribute
blocks and calling each transformer's ``inverse`` — same values, same
dtypes — for every encoding/normalization combination, after state
round trips, and for the matrix (CNN) sample form.
"""

import numpy as np
import pytest

from repro.datasets.schema import (
    Attribute, CATEGORICAL, NUMERICAL, Schema, Table,
)
from repro.transform import MatrixTransformer, RecordTransformer
from repro.transform.record import CompiledInverse, transformer_from_state

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=250, seed=2)


@pytest.fixture(scope="module")
def integral_table():
    """Mixed table with an integral numerical attribute (rint on decode)."""
    rng = np.random.default_rng(5)
    n = 200
    schema = Schema(
        attributes=(
            Attribute("count", NUMERICAL, integral=True),
            Attribute("score", NUMERICAL),
            Attribute("kind", CATEGORICAL, categories=("a", "b", "c")),
        ),
    )
    return Table(schema, {
        "count": rng.integers(0, 50, n).astype(np.float64),
        "score": rng.normal(size=n),
        "kind": rng.integers(0, 3, n),
    })


def assert_columns_identical(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        ca, cb = a.column(name), b.column(name)
        assert ca.dtype == cb.dtype, name
        np.testing.assert_array_equal(ca, cb)


@pytest.mark.parametrize("encoding", ["onehot", "ordinal"])
@pytest.mark.parametrize("normalization", ["gmm", "simple"])
class TestRecordCompiledInverse:
    def test_bit_identical_to_reference(self, table, encoding,
                                        normalization):
        transformer = RecordTransformer(
            categorical_encoding=encoding,
            numerical_normalization=normalization,
            rng=np.random.default_rng(1)).fit(table)
        samples = np.random.default_rng(0).normal(
            scale=0.8, size=(400, transformer.output_dim))
        assert_columns_identical(
            transformer.inverse(samples),
            transformer.inverse(samples, vectorized=False))

    def test_state_round_trip_keeps_compiled_path(self, table, encoding,
                                                  normalization):
        transformer = RecordTransformer(
            categorical_encoding=encoding,
            numerical_normalization=normalization,
            rng=np.random.default_rng(1)).fit(table)
        samples = np.random.default_rng(0).normal(
            scale=0.8, size=(120, transformer.output_dim))
        restored = transformer_from_state(transformer.to_state())
        assert restored._compiled is not None
        assert_columns_identical(transformer.inverse(samples),
                                 restored.inverse(samples))


class TestIntegralAndEdgeCases:
    def test_integral_columns_are_rounded(self, integral_table):
        for normalization in ("simple", "gmm"):
            transformer = RecordTransformer(
                numerical_normalization=normalization,
                rng=np.random.default_rng(2)).fit(integral_table)
            samples = np.random.default_rng(3).normal(
                scale=0.7, size=(300, transformer.output_dim))
            fast = transformer.inverse(samples)
            slow = transformer.inverse(samples, vectorized=False)
            assert_columns_identical(fast, slow)
            counts = fast.column("count")
            np.testing.assert_array_equal(counts, np.rint(counts))

    def test_out_of_range_values_clip_identically(self, table):
        transformer = RecordTransformer(
            rng=np.random.default_rng(1)).fit(table)
        samples = np.random.default_rng(0).normal(
            scale=5.0, size=(200, transformer.output_dim))  # far outside
        assert_columns_identical(
            transformer.inverse(samples),
            transformer.inverse(samples, vectorized=False))

    def test_transform_inverse_round_trip(self, table):
        transformer = RecordTransformer(
            categorical_encoding="onehot", numerical_normalization="simple",
            rng=np.random.default_rng(1)).fit(table)
        encoded = transformer.transform(table)
        decoded = transformer.inverse(encoded)
        for name in ("job", "city", "label"):
            np.testing.assert_array_equal(decoded.column(name),
                                          table.column(name))


class TestMatrixCompiledInverse:
    def test_bit_identical_to_reference(self, table):
        transformer = MatrixTransformer().fit(table)
        samples = np.random.default_rng(4).normal(
            scale=0.8, size=(300, 1, transformer.side, transformer.side))
        assert_columns_identical(
            transformer.inverse(samples),
            transformer.inverse(samples, vectorized=False))

    def test_state_round_trip(self, table):
        transformer = MatrixTransformer().fit(table)
        samples = np.random.default_rng(4).normal(
            scale=0.8, size=(80, 1, transformer.side, transformer.side))
        restored = transformer_from_state(transformer.to_state())
        assert restored._compiled is not None
        assert_columns_identical(transformer.inverse(samples),
                                 restored.inverse(samples))


class TestCompiledInverseInternals:
    def test_argmax_padding_never_wins(self):
        """Padded duplicate columns must not steal the argmax from the
        real first occurrence (tie-breaking contract)."""
        transformer = RecordTransformer(
            categorical_encoding="onehot", numerical_normalization="simple",
            rng=np.random.default_rng(1))
        table = make_mixed_table(n=100, seed=0)
        transformer.fit(table)
        width = transformer.output_dim
        # All-equal scores: argmax must pick each block's first column.
        samples = np.zeros((5, width))
        decoded = transformer.inverse(samples)
        reference = transformer.inverse(samples, vectorized=False)
        assert_columns_identical(decoded, reference)

    def test_unknown_kind_rejected(self, table):
        transformer = RecordTransformer(
            rng=np.random.default_rng(1)).fit(table)

        class Weird:
            def inverse_spec(self):
                return {"kind": "nope"}

        from repro.errors import TransformError
        with pytest.raises(TransformError, match="unknown inverse kind"):
            CompiledInverse(transformer.blocks[:1],
                            {transformer.blocks[0].name: Weird()})
