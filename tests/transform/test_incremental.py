"""Incremental transformers: partial_fit chains equal one-shot fits."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.transform import (
    GMMNormalizer, OneHotEncoder, OrdinalEncoder, RecordTransformer,
    SimpleNormalizer,
)

from tests.conftest import make_mixed_table


class TestSimpleNormalizer:
    def test_partial_chain_equals_one_shot(self, rng):
        values = rng.normal(3.0, 2.0, 500)
        one_shot = SimpleNormalizer().fit(values)
        partial = SimpleNormalizer()
        for start in range(0, 500, 130):
            partial.partial_fit(values[start:start + 130])
        partial.finalize_partial()
        assert partial.min == one_shot.min
        assert partial.max == one_shot.max
        np.testing.assert_allclose(partial.transform(values),
                                   one_shot.transform(values))

    def test_welford_moments_match_numpy(self, rng):
        values = rng.normal(-1.0, 4.0, 300)
        norm = SimpleNormalizer()
        for start in range(0, 300, 71):
            norm.partial_fit(values[start:start + 71])
        mean, var = norm.moments()
        assert mean == pytest.approx(values.mean())
        assert var == pytest.approx(values.var())

    def test_finalize_without_data_raises(self):
        with pytest.raises(TransformError):
            SimpleNormalizer().finalize_partial()

    def test_fit_still_rejects_empty(self):
        with pytest.raises(TransformError):
            SimpleNormalizer().fit(np.empty(0))


class TestCategoricalGrowOnly:
    def test_ordinal_domain_grows(self):
        enc = OrdinalEncoder()
        enc.partial_fit(np.array([0, 1, 2]))
        enc.partial_fit(np.array([0, 4]))  # new category appears
        enc.finalize_partial()
        assert enc.domain_size == 5
        enc.partial_fit(np.array([1]))  # smaller chunk cannot shrink it
        assert enc.domain_size == 5

    def test_onehot_width_tracks_domain(self):
        enc = OneHotEncoder()
        enc.partial_fit(np.array([0, 1]))
        enc.partial_fit(np.array([3]))
        enc.finalize_partial()
        assert enc.domain_size == 4
        assert enc.width == 4
        assert enc.transform(np.array([3])).shape == (1, 4)

    def test_finalize_without_data_raises(self):
        with pytest.raises(TransformError):
            OrdinalEncoder().finalize_partial()


class TestGMMReservoir:
    def test_under_capacity_stream_equals_fit(self, rng):
        # While the stream fits in the reservoir the retained sample is
        # the stream itself (in order), so the refit is identical.
        values = rng.normal(0.0, 1.0, 400)
        one_shot = GMMNormalizer(n_components=3,
                                 rng=np.random.default_rng(0)).fit(values)
        streamed = GMMNormalizer(n_components=3,
                                 rng=np.random.default_rng(0))
        for start in range(0, 400, 90):
            streamed.partial_fit(values[start:start + 90])
        streamed.finalize_partial()
        np.testing.assert_allclose(streamed.transform(values),
                                   one_shot.transform(values))

    def test_long_stream_stays_bounded_and_usable(self, rng):
        streamed = GMMNormalizer(n_components=2, reservoir_size=256,
                                 rng=np.random.default_rng(1))
        for _ in range(20):
            streamed.partial_fit(rng.normal(5.0, 2.0, 500))
        streamed.finalize_partial()
        assert len(streamed._reservoir) == 256
        out = streamed.transform(rng.normal(5.0, 2.0, 50))
        assert np.isfinite(out).all()


class TestRecordTransformer:
    def test_partial_chain_equals_one_shot(self):
        table = make_mixed_table(n=240, seed=0)
        one_shot = RecordTransformer(
            categorical_encoding="onehot",
            numerical_normalization="simple",
            rng=np.random.default_rng(0))
        one_shot.fit(table)
        partial = RecordTransformer(
            categorical_encoding="onehot",
            numerical_normalization="simple",
            rng=np.random.default_rng(0))
        for start in range(0, 240, 70):
            idx = np.arange(start, min(start + 70, 240))
            partial.partial_fit(table.take(idx))
        partial.finalize()
        assert partial.output_dim == one_shot.output_dim
        np.testing.assert_allclose(partial.transform(table),
                                   one_shot.transform(table))

    def test_finalize_without_chunks_raises(self):
        with pytest.raises(TransformError):
            RecordTransformer().finalize()

    def test_reset_allows_reuse(self):
        table = make_mixed_table(n=60, seed=1)
        transformer = RecordTransformer(
            numerical_normalization="simple",
            rng=np.random.default_rng(0))
        transformer.partial_fit(table)
        transformer.finalize()
        transformer.reset()
        transformer.partial_fit(table)
        transformer.finalize()
        assert transformer.transform(table).shape[0] == 60
