"""Record-level transformation: vector and matrix forms, reversibility."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.transform import MatrixTransformer, RecordTransformer
from repro.transform.base import HEAD_SOFTMAX, HEAD_TANH_SOFTMAX

from tests.conftest import make_mixed_table


@pytest.fixture
def table():
    return make_mixed_table(n=300, seed=3)


class TestRecordTransformer:
    @pytest.mark.parametrize("enc,norm", [
        ("ordinal", "simple"), ("ordinal", "gmm"),
        ("onehot", "simple"), ("onehot", "gmm"),
    ])
    def test_categorical_round_trip_exact(self, table, enc, norm):
        rt = RecordTransformer(enc, norm,
                               rng=np.random.default_rng(0)).fit(table)
        back = rt.inverse(rt.transform(table))
        for name in ("job", "city", "label"):
            np.testing.assert_array_equal(back.column(name),
                                          table.column(name))

    def test_simple_norm_numeric_round_trip_exact(self, table):
        rt = RecordTransformer("onehot", "simple").fit(table)
        back = rt.inverse(rt.transform(table))
        np.testing.assert_allclose(back.column("age"), table.column("age"),
                                   atol=1e-9)

    def test_gmm_numeric_round_trip_close(self, table):
        rt = RecordTransformer("onehot", "gmm",
                               rng=np.random.default_rng(0)).fit(table)
        back = rt.inverse(rt.transform(table))
        spread = table.column("age").std()
        err = np.abs(back.column("age") - table.column("age")).mean()
        assert err < spread  # mode-local reconstruction

    def test_block_layout_covers_output(self, table):
        rt = RecordTransformer("onehot", "gmm").fit(table)
        stops = 0
        for block in rt.blocks:
            assert block.start == stops
            stops = block.stop
        assert stops == rt.output_dim

    def test_block_heads(self, table):
        rt = RecordTransformer("onehot", "gmm").fit(table)
        by_name = {b.name: b for b in rt.blocks}
        assert by_name["job"].head == HEAD_SOFTMAX
        assert by_name["age"].head == HEAD_TANH_SOFTMAX

    def test_exclude_label(self, table):
        rt = RecordTransformer("onehot", "simple",
                               exclude=("label",)).fit(table)
        assert "label" not in [b.name for b in rt.blocks]
        back = rt.inverse(rt.transform(table),
                          extra_columns={"label": table.column("label")})
        np.testing.assert_array_equal(back.column("label"),
                                      table.column("label"))

    def test_exclude_without_extra_raises(self, table):
        rt = RecordTransformer(exclude=("label",)).fit(table)
        with pytest.raises(TransformError):
            rt.inverse(rt.transform(table))

    def test_wrong_width_raises(self, table):
        rt = RecordTransformer().fit(table)
        with pytest.raises(TransformError):
            rt.inverse(np.zeros((5, rt.output_dim + 1)))

    def test_unfitted_raises(self, table):
        with pytest.raises(TransformError):
            RecordTransformer().transform(table)

    def test_unknown_encoding_raises(self, table):
        with pytest.raises(TransformError):
            RecordTransformer(categorical_encoding="wat").fit(table)


class TestMatrixTransformer:
    def test_square_shape_with_padding(self, table):
        mt = MatrixTransformer().fit(table)
        out = mt.transform(table)
        # 5 attributes -> 3x3 with 4 pad cells.
        assert mt.side == 3
        assert out.shape == (len(table), 1, 3, 3)
        np.testing.assert_allclose(out[:, 0, 2, 1:], 0.0)

    def test_round_trip_categorical_exact(self, table):
        mt = MatrixTransformer().fit(table)
        back = mt.inverse(mt.transform(table))
        for name in ("job", "city", "label"):
            np.testing.assert_array_equal(back.column(name),
                                          table.column(name))

    def test_values_in_tanh_range(self, table):
        mt = MatrixTransformer().fit(table)
        out = mt.transform(table)
        assert out.min() >= -1.0
        assert out.max() <= 1.0

    def test_requested_side(self, table):
        mt = MatrixTransformer(side=8).fit(table)
        assert mt.transform(table).shape == (len(table), 1, 8, 8)

    def test_side_too_small_raises(self, table):
        with pytest.raises(TransformError):
            MatrixTransformer(side=2).fit(table)

    def test_wrong_shape_inverse_raises(self, table):
        mt = MatrixTransformer().fit(table)
        with pytest.raises(TransformError):
            mt.inverse(np.zeros((5, 1, 4, 4)))
