"""Numerical normalizers: simple min-max and GMM-based."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransformError
from repro.transform import GMMNormalizer, SimpleNormalizer
from repro.transform.base import HEAD_TANH, HEAD_TANH_SOFTMAX


class TestSimpleNormalizer:
    def test_range_is_minus_one_to_one(self, rng):
        values = rng.normal(10.0, 5.0, 100)
        norm = SimpleNormalizer().fit(values)
        out = norm.transform(values)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_round_trip(self, rng):
        values = rng.uniform(-50, 50, 40)
        norm = SimpleNormalizer().fit(values)
        np.testing.assert_allclose(norm.inverse(norm.transform(values)),
                                   values, atol=1e-9)

    def test_integral_rounds(self):
        values = np.array([1.0, 5.0, 9.0])
        norm = SimpleNormalizer(integral=True).fit(values)
        block = norm.transform(np.array([4.9]))
        assert float(norm.inverse(block)[0]) == pytest.approx(5.0)

    def test_inverse_clips_overflow(self):
        norm = SimpleNormalizer().fit(np.array([0.0, 10.0]))
        decoded = norm.inverse(np.array([[3.0], [-3.0]]))
        assert decoded[0] == pytest.approx(10.0)
        assert decoded[1] == pytest.approx(0.0)

    def test_constant_column(self):
        norm = SimpleNormalizer().fit(np.array([7.0, 7.0]))
        out = norm.transform(np.array([7.0]))
        assert np.isfinite(out).all()
        assert norm.inverse(out)[0] == pytest.approx(7.0, abs=1e-6)

    def test_head(self):
        assert SimpleNormalizer().head == HEAD_TANH


class TestGMMNormalizer:
    def test_width_is_one_plus_components(self, rng):
        values = rng.normal(size=500)
        norm = GMMNormalizer(n_components=5, rng=rng).fit(values)
        assert norm.width == 1 + norm.n_components
        assert norm.transform(values).shape == (500, norm.width)

    def test_mode_indicator_is_one_hot(self, rng):
        values = np.concatenate([rng.normal(-10, 1, 200),
                                 rng.normal(10, 1, 200)])
        norm = GMMNormalizer(n_components=2, rng=rng).fit(values)
        block = norm.transform(values)
        modes = block[:, 1:]
        np.testing.assert_allclose(modes.sum(axis=1), 1.0)
        assert set(np.unique(modes)) <= {0.0, 1.0}

    def test_bimodal_recovery(self, rng):
        """Values from two far modes map back close to themselves."""
        values = np.concatenate([rng.normal(-10, 0.5, 300),
                                 rng.normal(10, 0.5, 300)])
        norm = GMMNormalizer(n_components=2, rng=rng).fit(values)
        decoded = norm.inverse(norm.transform(values))
        assert np.abs(decoded - values).mean() < 0.5

    def test_vgmm_clipped(self, rng):
        values = rng.normal(size=300)
        norm = GMMNormalizer(n_components=3, rng=rng).fit(values)
        block = norm.transform(np.array([1e6]))  # extreme outlier
        assert abs(block[0, 0]) <= 1.0

    def test_low_cardinality_collapses_components(self, rng):
        values = np.array([1.0, 2.0] * 50)
        norm = GMMNormalizer(n_components=5, rng=rng).fit(values)
        assert norm.n_components <= 2

    def test_head_and_discreteness(self, rng):
        norm = GMMNormalizer(rng=rng)
        assert norm.head == HEAD_TANH_SOFTMAX
        assert norm.discrete_block

    def test_unfitted_raises(self):
        with pytest.raises(TransformError):
            GMMNormalizer().transform(np.array([1.0]))

    def test_integral_rounds(self, rng):
        values = np.round(rng.normal(100, 20, 200))
        norm = GMMNormalizer(integral=True, rng=rng).fit(values)
        decoded = norm.inverse(norm.transform(values))
        np.testing.assert_allclose(decoded, np.round(decoded))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=50))
def test_property_simple_normalizer_round_trip(values):
    values = np.array(values)
    norm = SimpleNormalizer().fit(values)
    decoded = norm.inverse(norm.transform(values))
    span = max(values.max() - values.min(), 1.0)
    assert np.abs(decoded - values).max() <= 1e-6 * span + 1e-9
