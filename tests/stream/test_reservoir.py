"""Seeded reservoir sampling: bounds, determinism, row alignment."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import Reservoir, TableReservoir, reservoir_plan
from repro.stream.reservoir import widen_schema

from tests.conftest import make_mixed_table


class TestPlan:
    def test_fill_phase_keeps_everything_in_order(self):
        rng = np.random.default_rng(0)
        positions, slots = reservoir_plan(3, 4, 10, rng)
        np.testing.assert_array_equal(positions, [0, 1, 2, 3])
        np.testing.assert_array_equal(slots, [3, 4, 5, 6])

    def test_slots_stay_in_range(self):
        rng = np.random.default_rng(1)
        for n_seen in (0, 5, 50, 500):
            positions, slots = reservoir_plan(n_seen, 64, 32, rng)
            assert positions.size == slots.size
            assert slots.size == 0 or slots.max() < 32
            assert positions.size == 0 or positions.max() < 64


class TestReservoir:
    def test_under_capacity_retains_all_in_order(self):
        res = Reservoir(100, rng=np.random.default_rng(0))
        res.add(np.arange(30.0)).add(np.arange(30.0, 50.0))
        assert len(res) == 50
        np.testing.assert_array_equal(res.values(), np.arange(50.0))

    def test_bounded_and_subset_of_stream(self):
        res = Reservoir(40, rng=np.random.default_rng(2))
        stream = np.arange(1000.0)
        for start in range(0, 1000, 170):
            res.add(stream[start:start + 170])
        assert len(res) == 40
        assert res.n_seen == 1000
        assert np.isin(res.values(), stream).all()

    def test_seeded_determinism(self):
        def run(seed):
            res = Reservoir(16, rng=np.random.default_rng(seed))
            for start in range(0, 400, 90):
                res.add(np.arange(float(start), float(start + 90)))
            return res.values()

        np.testing.assert_array_equal(run(7), run(7))
        assert not np.array_equal(run(7), run(8))

    def test_roughly_uniform_over_the_stream(self):
        # Every stream item should be retained with probability k/n;
        # averaged over trials the late half appears about as often as
        # the early half.
        hits = np.zeros(200)
        for trial in range(60):
            res = Reservoir(20, rng=np.random.default_rng(trial))
            res.add(np.arange(200.0))
            hits[res.values().astype(int)] += 1
        early, late = hits[:100].mean(), hits[100:].mean()
        assert 0.5 < early / late < 2.0

    def test_rejects_matrices(self):
        with pytest.raises(ValueError):
            Reservoir(4).add(np.zeros((2, 2)))

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(0)


class TestTableReservoir:
    def test_rows_stay_aligned(self):
        # age is a deterministic function of the row id here; if the
        # plan were applied per column independently the pairing would
        # break.
        n = 500
        ids = np.arange(n, dtype=np.int64)
        table = make_mixed_table(n=n, seed=0)
        table = type(table)(table.schema, dict(table.columns,
                                               age=ids.astype(float),
                                               income=ids * 2.0))
        res = TableReservoir(64, rng=np.random.default_rng(3))
        for start in range(0, n, 120):
            res.add(table.take(np.arange(start, min(start + 120, n))))
        kept = res.table()
        np.testing.assert_array_equal(kept.column("income"),
                                      kept.column("age") * 2.0)

    def test_empty_reservoir_raises(self):
        with pytest.raises(StreamError):
            TableReservoir(8).table()

    def test_schema_widens_grow_only(self):
        table = make_mixed_table(n=50, seed=1)
        grown_schema = widen_schema(
            table.schema,
            type(table.schema)(
                tuple(attr if attr.name != "city" else
                      type(attr)("city", attr.kind,
                                 categories=attr.categories + ("e",))
                      for attr in table.schema.attributes),
                label_name=table.schema.label_name))
        assert grown_schema["city"].categories[-1] == "e"

    def test_widen_rejects_renames(self):
        table = make_mixed_table(n=10, seed=1)
        renamed = type(table.schema)(
            tuple(attr if attr.name != "city" else
                  type(attr)("city", attr.kind,
                             categories=("x",) + attr.categories[1:])
                  for attr in table.schema.attributes),
            label_name=table.schema.label_name)
        with pytest.raises(StreamError):
            widen_schema(table.schema, renamed)
