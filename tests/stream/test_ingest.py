"""Out-of-core chunk sources: CSV, tables, iterators, coercion."""

import csv

import numpy as np
import pytest

from repro.datasets.schema import Table
from repro.errors import StreamError
from repro.stream import (
    CsvChunkSource, IteratorChunkSource, TableChunkSource, as_chunk_source,
    infer_csv_schema, table_chunks,
)

from tests.conftest import make_mixed_table


def write_csv(path, table):
    """Dump a table to CSV with category labels spelled out."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.names)
        decoded = {}
        for attr in table.schema:
            col = table.column(attr.name)
            if attr.is_categorical:
                decoded[attr.name] = [attr.categories[c] for c in col]
            else:
                decoded[attr.name] = [repr(float(v)) for v in col]
        for i in range(len(table)):
            writer.writerow([decoded[name][i]
                             for name in table.schema.names])


class TestTableChunks:
    def test_chunk_sizes_and_content(self):
        table = make_mixed_table(n=100, seed=0)
        chunks = list(table_chunks(table, chunk_rows=33))
        assert [len(c) for c in chunks] == [33, 33, 33, 1]
        rebuilt = np.concatenate([c.column("age") for c in chunks])
        np.testing.assert_array_equal(rebuilt, table.column("age"))

    def test_reiterable(self):
        source = TableChunkSource(make_mixed_table(n=10, seed=0), 4)
        assert source.reiterable
        assert len(list(source.chunks())) == len(list(source.chunks()))

    def test_empty_table_rejected(self):
        table = make_mixed_table(n=10, seed=0)
        with pytest.raises(StreamError):
            TableChunkSource(table.take(np.arange(0)), 4)


class TestCsv:
    def test_schema_inference(self, tmp_path):
        table = make_mixed_table(n=60, seed=1)
        path = tmp_path / "data.csv"
        write_csv(path, table)
        schema = infer_csv_schema(path)
        assert schema["age"].is_numerical
        assert not schema["age"].integral
        assert schema["job"].is_categorical
        assert set(schema["job"].categories) == {"eng", "doc", "art"}

    def test_streamed_chunks_reassemble_the_table(self, tmp_path):
        table = make_mixed_table(n=57, seed=2)
        path = tmp_path / "data.csv"
        write_csv(path, table)
        source = CsvChunkSource(path, chunk_rows=20, schema=table.schema)
        chunks = list(source.chunks())
        assert [len(c) for c in chunks] == [20, 20, 17]
        for name in table.schema.names:
            rebuilt = np.concatenate([c.column(name) for c in chunks])
            np.testing.assert_allclose(rebuilt, table.column(name))

    def test_out_of_vocabulary_value_raises(self, tmp_path):
        table = make_mixed_table(n=20, seed=3)
        path = tmp_path / "data.csv"
        write_csv(path, table)
        narrow = table.schema.without_label()
        with pytest.raises(StreamError):
            # The label column is missing from the declared schema's
            # vocabulary check only if present; drop a category instead.
            list(CsvChunkSource(
                path, chunk_rows=8,
                schema=_drop_category(table.schema, "city")).chunks())
        assert narrow is not table.schema  # silence unused warning

    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError):
            CsvChunkSource(tmp_path / "nope.csv")


def _drop_category(schema, name):
    from repro.datasets.schema import Attribute, Schema

    attrs = tuple(
        Attribute(a.name, a.kind, categories=a.categories[:-1])
        if a.name == name else a
        for a in schema.attributes)
    return Schema(attrs, label_name=schema.label_name)


class TestCoercion:
    def test_iterator_source_is_single_shot(self):
        table = make_mixed_table(n=12, seed=0)
        source = IteratorChunkSource(iter([table]))
        assert not source.reiterable
        assert len(list(source.chunks())) == 1
        with pytest.raises(StreamError):
            list(source.chunks())

    def test_callable_source_is_reiterable(self):
        table = make_mixed_table(n=12, seed=0)
        source = as_chunk_source(lambda: table_chunks(table, 5))
        assert source.reiterable
        assert len(list(source.chunks())) == len(list(source.chunks()))

    def test_non_table_chunk_rejected(self):
        source = as_chunk_source(iter([np.zeros(3)]))
        with pytest.raises(StreamError):
            list(source.chunks())

    def test_unsupported_source_rejected(self):
        with pytest.raises(StreamError):
            as_chunk_source(42)

    def test_table_dispatch(self):
        table = make_mixed_table(n=12, seed=0)
        assert isinstance(as_chunk_source(table, chunk_rows=4),
                          TableChunkSource)
