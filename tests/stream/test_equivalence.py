"""Streaming-vs-one-shot: PrivBayes exact, neural families bounded."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigError, StreamError, TrainingError
from repro.stream import table_chunks

from tests.conftest import make_mixed_table

TINY_FIT = dict(epochs=1, iterations_per_epoch=3)


def tables_equal(a, b):
    assert a.schema == b.schema
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


class TestPrivBayesExact:
    """PB counts are additive: streamed fit == one-shot fit, bit for bit."""

    @pytest.mark.parametrize("epsilon", [None, 0.8])
    def test_fit_stream_matches_fit(self, epsilon):
        table = make_mixed_table(n=400, seed=0)
        one_shot = repro.make_synthesizer("privbayes", epsilon=epsilon,
                                          seed=3).fit(table)
        streamed = repro.make_synthesizer("privbayes", epsilon=epsilon,
                                          seed=3)
        streamed.fit_stream(table, chunk_rows=97)

        assert streamed.network.parents == one_shot.network.parents
        for name, probs in one_shot.conditionals.items():
            np.testing.assert_array_equal(streamed.conditionals[name], probs)
        tables_equal(streamed.sample(50, seed=11),
                     one_shot.sample(50, seed=11))

    def test_chunking_does_not_matter(self):
        table = make_mixed_table(n=300, seed=1)
        reference = repro.make_synthesizer("privbayes", epsilon=0.4, seed=5)
        reference.fit_stream(table, chunk_rows=300)
        other = repro.make_synthesizer("privbayes", epsilon=0.4, seed=5)
        other.fit_stream(table, chunk_rows=17)
        for name, probs in reference.conditionals.items():
            np.testing.assert_array_equal(other.conditionals[name], probs)

    def test_schema_must_stay_fixed(self):
        table = make_mixed_table(n=60, seed=2)
        synth = repro.make_synthesizer("privbayes", epsilon=None, seed=0)
        synth.partial_fit(table)
        with pytest.raises(TrainingError):
            synth.partial_fit(table.select(["age", "job"]))


class TestStreamLifecycle:
    def test_callbacks_see_every_chunk(self):
        table = make_mixed_table(n=100, seed=3)
        records = []
        synth = repro.make_synthesizer("privbayes", epsilon=None, seed=0)
        synth.fit_stream(table, chunk_rows=30, callbacks=records.append)
        assert [r["chunk"] for r in records] == [0, 1, 2, 3]
        assert records[-1]["total_rows"] == 100
        assert synth.stream_rows == 100

    def test_partial_fit_then_sample_lazily_finalizes(self):
        table = make_mixed_table(n=120, seed=4)
        synth = repro.make_synthesizer("privbayes", epsilon=None, seed=0)
        for chunk in table_chunks(table, 40):
            synth.partial_fit(chunk)
        # No explicit finalize_stream: sampling triggers the refresh.
        assert len(synth.sample(20, seed=1)) == 20
        assert synth.stream_rows == 120

    def test_empty_source_raises(self):
        synth = repro.make_synthesizer("privbayes", epsilon=None, seed=0)
        with pytest.raises(StreamError):
            synth.fit_stream(iter([]))

    def test_unsupported_family_raises(self):
        from repro.api import Synthesizer

        class NoStream(Synthesizer):
            def _fit(self, table, callbacks, conditions=None):
                pass

            def _sample_chunk(self, m, rng, conditions=None):
                raise NotImplementedError

        assert not NoStream.supports_partial_fit
        with pytest.raises(ConfigError):
            NoStream().partial_fit(make_mixed_table(n=10))
        with pytest.raises(ConfigError):
            NoStream().fit_stream(make_mixed_table(n=10))

    def test_facade_fit_stream(self):
        table = make_mixed_table(n=150, seed=5)
        synth = repro.fit_stream(table, method="privbayes", epsilon=None,
                                 chunk_rows=50, seed=2)
        direct = repro.make_synthesizer("privbayes", epsilon=None, seed=2)
        direct.fit_stream(table, chunk_rows=50)
        tables_equal(synth.sample(30, seed=9), direct.sample(30, seed=9))

    def test_csv_fit_stream_matches_table_fit_stream(self, tmp_path):
        from tests.stream.test_ingest import write_csv

        table = make_mixed_table(n=90, seed=6)
        path = tmp_path / "train.csv"
        write_csv(path, table)
        from_csv = repro.fit_stream(str(path), method="privbayes",
                                    epsilon=None, chunk_rows=40, seed=1,
                                    schema=table.schema)
        from_table = repro.fit_stream(table, method="privbayes",
                                      epsilon=None, chunk_rows=40, seed=1)
        tables_equal(from_csv.sample(25, seed=3),
                     from_table.sample(25, seed=3))


class TestNeuralReservoirStreaming:
    @pytest.mark.parametrize("method", ["gan", "vae"])
    def test_fit_stream_produces_a_working_model(self, method):
        table = make_mixed_table(n=200, seed=0)
        synth = repro.fit_stream(table, method=method, chunk_rows=80,
                                 seed=0, **TINY_FIT)
        assert synth.stream_rows == 200
        out = synth.sample(40, seed=7)
        assert len(out) == 40
        assert out.schema.names == table.schema.names

    @pytest.mark.parametrize("method", ["gan", "vae"])
    def test_one_shot_fit_is_unchanged_by_streaming_support(self, method):
        # Same seed, same table: fit must stay deterministic — the
        # stream state is seeded off dedicated substreams and must not
        # perturb the training trajectory.
        table = make_mixed_table(n=150, seed=1)
        a = repro.make_synthesizer(method, seed=4, **TINY_FIT).fit(table)
        b = repro.make_synthesizer(method, seed=4, **TINY_FIT).fit(table)
        tables_equal(a.sample(30, seed=2), b.sample(30, seed=2))

    def test_fit_then_partial_fit_continues_from_the_base_table(self):
        table = make_mixed_table(n=160, seed=2)
        update = make_mixed_table(n=40, seed=9)
        synth = repro.make_synthesizer("gan", seed=0, **TINY_FIT).fit(table)
        synth.partial_fit(update)
        assert synth.stream_rows == 40
        assert len(synth._reservoir) == 200  # base rows + update rows
        assert len(synth.sample(20, seed=5)) == 20

    def test_conditional_gan_rejects_streaming(self):
        from repro.core.design_space import DesignConfig

        table = make_mixed_table(n=80, seed=3)
        synth = repro.make_synthesizer(
            "gan", config=DesignConfig(conditional=True), seed=0,
            **TINY_FIT).fit(table)
        with pytest.raises(ConfigError):
            synth.partial_fit(table)
