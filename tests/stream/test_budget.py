"""Cumulative privacy accounting across fits and streaming refreshes."""

import pytest

import repro
from repro.errors import PrivacyBudgetError
from repro.privacy import PrivacyLedger

from tests.conftest import make_mixed_table


class TestLedger:
    def test_accumulates_and_reports(self):
        ledger = PrivacyLedger(budget=2.0)
        assert ledger.spent == 0.0
        assert ledger.remaining == 2.0
        ledger.spend(0.8, note="first")
        ledger.spend(0.8, note="second")
        assert ledger.spent == pytest.approx(1.6)
        assert ledger.remaining == pytest.approx(0.4)
        assert [note for _, note in ledger.events] == ["first", "second"]

    def test_check_raises_before_overspend(self):
        ledger = PrivacyLedger(budget=1.0)
        ledger.spend(0.8)
        with pytest.raises(PrivacyBudgetError):
            ledger.check(0.8)

    def test_exact_budget_is_allowed(self):
        ledger = PrivacyLedger(budget=1.6)
        ledger.spend(0.8)
        ledger.check(0.8)  # floating-point slack: exactly on budget

    def test_unbounded_without_budget(self):
        ledger = PrivacyLedger()
        ledger.spend(100.0)
        ledger.check(100.0)
        assert ledger.remaining is None

    def test_state_round_trip(self):
        ledger = PrivacyLedger(budget=3.0)
        ledger.spend(0.5, note="a")
        clone = PrivacyLedger.from_state(ledger.to_state())
        assert clone.budget == 3.0
        assert clone.spent == pytest.approx(0.5)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            PrivacyLedger(budget=0.0)


class TestPrivBayesAccounting:
    def test_spend_accumulates_across_refreshes(self):
        table = make_mixed_table(n=200, seed=0)
        synth = repro.make_synthesizer("privbayes", epsilon=0.5, seed=0)
        synth.fit(table)
        assert synth.privacy_spent() == pytest.approx(0.5)
        synth.partial_fit(make_mixed_table(n=50, seed=1))
        synth.finalize_stream()
        assert synth.privacy_spent() == pytest.approx(1.0)
        assert len(synth.privacy_ledger.events) == 2

    def test_budget_cap_stops_the_refresh(self):
        table = make_mixed_table(n=200, seed=0)
        synth = repro.make_synthesizer("privbayes", epsilon=0.8,
                                       budget=1.0, seed=0)
        synth.fit(table)
        synth.partial_fit(make_mixed_table(n=50, seed=1))
        with pytest.raises(PrivacyBudgetError):
            synth.finalize_stream()
        # Retrying without new budget raises again — the failed
        # refresh must not silently serve a half-updated model.
        with pytest.raises(PrivacyBudgetError):
            synth.sample(10, seed=1)

    def test_budget_check_precedes_one_shot_fit(self):
        table = make_mixed_table(n=100, seed=0)
        synth = repro.make_synthesizer("privbayes", epsilon=0.8,
                                       budget=1.0, seed=0)
        synth.fit(table)
        with pytest.raises(PrivacyBudgetError):
            synth.fit(table)

    def test_epsilon_none_spends_nothing(self):
        table = make_mixed_table(n=100, seed=0)
        synth = repro.make_synthesizer("privbayes", epsilon=None, seed=0)
        synth.fit(table)
        synth.partial_fit(table)
        synth.finalize_stream()
        assert synth.privacy_spent() == 0.0

    def test_ledger_survives_persistence(self, tmp_path):
        table = make_mixed_table(n=150, seed=0)
        synth = repro.make_synthesizer("privbayes", epsilon=0.6,
                                       budget=1.0, seed=0)
        synth.fit(table)
        synth.save(tmp_path / "pb")
        loaded = repro.load_synthesizer(tmp_path / "pb")
        assert loaded.privacy_spent() == pytest.approx(0.6)
        assert loaded.privacy_ledger.budget == 1.0
        # The restored instance keeps enforcing the cap.
        with pytest.raises(PrivacyBudgetError):
            loaded.fit(table)

    def test_base_families_report_none(self):
        synth = repro.make_synthesizer("gan", seed=0)
        assert synth.privacy_spent() is None
