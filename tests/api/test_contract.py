"""Shared Synthesizer-contract suite run against every method family.

Each registered family must honour the unified lifecycle: fit/sample
schema preservation, seed-reproducible sampling, streaming generation,
save/load round trips that reproduce exact output arrays, and registry
lookup semantics.
"""

import numpy as np
import pytest

from repro.api import (
    Synthesizer, available_synthesizers, load_synthesizer, make_synthesizer,
    register, resolve,
)
from repro.api.registry import _REGISTRY
from repro.errors import ConfigError, TrainingError

from tests.conftest import make_mixed_table

FAMILIES = {
    "gan": dict(epochs=2, iterations_per_epoch=3),
    "vae": dict(epochs=1, iterations_per_epoch=3),
    "privbayes": dict(epsilon=None),
}


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=240, seed=3)


@pytest.fixture(scope="module")
def fitted(table):
    """One fitted synthesizer per family, shared across the module."""
    return {name: make_synthesizer(name, seed=0, **kwargs).fit(table)
            for name, kwargs in FAMILIES.items()}


def assert_tables_equal(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


@pytest.mark.parametrize("method", sorted(FAMILIES))
class TestContract:
    def test_is_synthesizer_with_method_name(self, fitted, method):
        synth = fitted[method]
        assert isinstance(synth, Synthesizer)
        assert synth.method == method
        assert synth.is_fitted

    def test_sample_preserves_schema(self, fitted, table, method):
        fake = fitted[method].sample(40)
        assert fake.schema.names == table.schema.names
        assert len(fake) == 40

    def test_seeded_sampling_is_reproducible(self, fitted, method):
        synth = fitted[method]
        assert_tables_equal(synth.sample(35, seed=11), synth.sample(35, seed=11))

    def test_unseeded_sampling_varies(self, fitted, table, method):
        synth = fitted[method]
        a, b = synth.sample(60), synth.sample(60)
        stacked = [np.concatenate([a.column(n).astype(float),
                                   b.column(n).astype(float)])
                   for n in table.schema.names]
        assert any(not np.array_equal(s[:60], s[60:]) for s in stacked)

    def test_sample_iter_streams_chunks(self, fitted, method):
        synth = fitted[method]
        chunks = list(synth.sample_iter(25, batch=10, seed=5))
        assert [len(chunk) for chunk in chunks] == [10, 10, 5]
        streamed = chunks[0].concat_rows(chunks[1]).concat_rows(chunks[2])
        assert_tables_equal(streamed, synth.sample(25, batch=10, seed=5))

    def test_unfitted_sample_raises(self, method):
        synth = make_synthesizer(method, **FAMILIES[method])
        with pytest.raises(TrainingError):
            synth.sample(5)

    def test_fit_sample_defaults_to_table_size(self, table, method):
        synth = make_synthesizer(method, seed=1, **FAMILIES[method])
        fake = synth.fit_sample(table)
        assert len(fake) == len(table)

    def test_save_load_round_trip_exact(self, fitted, method, tmp_path):
        synth = fitted[method]
        synth.save(tmp_path / "model")
        restored = load_synthesizer(tmp_path / "model")
        assert type(restored) is type(synth)
        assert restored.is_fitted
        assert_tables_equal(synth.sample(50, seed=21),
                            restored.sample(50, seed=21))

    def test_load_via_concrete_class(self, fitted, method, tmp_path):
        synth = fitted[method]
        synth.save(tmp_path / "model")
        restored = type(synth).load(tmp_path / "model")
        assert type(restored) is type(synth)

    def test_registry_resolves(self, fitted, method):
        assert resolve(method) is type(fitted[method])
        assert method in available_synthesizers()


class TestRegistry:
    def test_unknown_name_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown synthesizer"):
            make_synthesizer("no-such-method")

    def test_unknown_name_on_resolve(self):
        with pytest.raises(ConfigError):
            resolve("definitely-not-registered")

    def test_non_string_name(self):
        with pytest.raises(ConfigError):
            resolve(42)

    def test_privbayes_alias(self):
        from repro.privbayes import PrivBayesSynthesizer

        assert resolve("pb") is PrivBayesSynthesizer

    def test_register_decorator(self):
        @register("dummy-for-test")
        class Dummy(Synthesizer):
            pass

        try:
            assert Dummy.method == "dummy-for-test"
            assert isinstance(make_synthesizer("dummy-for-test"), Dummy)
            assert "dummy-for-test" in available_synthesizers()
        finally:
            _REGISTRY.pop("dummy-for-test", None)

    def test_duplicate_registration_rejected(self):
        @register("dummy-dup")
        class First(Synthesizer):
            pass

        try:
            with pytest.raises(ConfigError, match="already registered"):
                @register("dummy-dup")
                class Second(Synthesizer):
                    pass
        finally:
            _REGISTRY.pop("dummy-dup", None)


class TestPersistenceErrors:
    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(TrainingError):
            make_synthesizer("privbayes", epsilon=None).save(tmp_path / "x")

    def test_load_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no saved synthesizer"):
            load_synthesizer(tmp_path / "nothing-here")

    def test_load_wrong_class_raises(self, table, tmp_path):
        from repro.vae import VAESynthesizer

        synth = make_synthesizer("privbayes", epsilon=None, seed=0).fit(table)
        synth.save(tmp_path / "pb")
        with pytest.raises(ConfigError, match="not a VAESynthesizer"):
            VAESynthesizer.load(tmp_path / "pb")


class TestGANSpecificPersistence:
    def test_cnn_matrix_form_round_trip(self, table, tmp_path):
        from repro.core.design_space import DesignConfig

        config = DesignConfig(generator="cnn", categorical_encoding="ordinal",
                              numerical_normalization="simple")
        synth = make_synthesizer("gan", config=config, epochs=1,
                                 iterations_per_epoch=2, seed=0).fit(table)
        synth.save(tmp_path / "cnn")
        restored = load_synthesizer(tmp_path / "cnn")
        assert_tables_equal(synth.sample(20, seed=9),
                            restored.sample(20, seed=9))

    def test_conditional_round_trip(self, table, tmp_path):
        from repro.core.design_space import DesignConfig

        synth = make_synthesizer(
            "gan", config=DesignConfig(training="ctrain"), epochs=1,
            iterations_per_epoch=2, seed=0).fit(table)
        synth.save(tmp_path / "cgan")
        restored = load_synthesizer(tmp_path / "cgan")
        assert_tables_equal(synth.sample(30, seed=4),
                            restored.sample(30, seed=4))

    def test_saved_config_survives(self, table, tmp_path):
        from repro.core.design_space import DesignConfig

        config = DesignConfig(generator="lstm", hidden_dim=96)
        synth = make_synthesizer("gan", config=config, epochs=1,
                                 iterations_per_epoch=2, seed=0).fit(table)
        synth.save(tmp_path / "lstm")
        restored = load_synthesizer(tmp_path / "lstm")
        assert restored.config == config
