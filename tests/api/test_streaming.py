"""Streaming sampling: chunk equivalence, sampling sessions, fast paths.

The acceptance contract for the streaming overhaul: ``sample_iter``
output concatenates to exactly what one-shot ``sample`` returns under a
fixed seed (any batch size, either engine dtype), and the sampling
session leaves models back in training mode however the stream ends.
"""

import numpy as np
import pytest

from repro import nn
from repro.api import make_synthesizer
from repro.api.facade import synthesize
from repro.core.design_space import DesignConfig

from tests.conftest import make_mixed_table

FAMILIES = {
    "gan": dict(epochs=1, iterations_per_epoch=3),
    "vae": dict(epochs=1, iterations_per_epoch=3),
    "privbayes": dict(epsilon=None),
}


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=240, seed=3)


@pytest.fixture(scope="module")
def fitted(table):
    return {name: make_synthesizer(name, seed=0, **kwargs).fit(table)
            for name, kwargs in FAMILIES.items()}


def assert_tables_equal(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def concat_all(chunks):
    out = chunks[0]
    for chunk in chunks[1:]:
        out = out.concat_rows(chunk)
    return out


@pytest.mark.parametrize("method", sorted(FAMILIES))
class TestStreamingEquivalence:
    def test_sample_iter_matches_sample_default_batch(self, fitted, method):
        synth = fitted[method]
        streamed = concat_all(list(synth.sample_iter(150, seed=17)))
        assert_tables_equal(streamed, synth.sample(150, seed=17))

    def test_sample_iter_matches_sample_small_batch(self, fitted, method):
        synth = fitted[method]
        streamed = concat_all(list(synth.sample_iter(75, batch=16, seed=4)))
        assert_tables_equal(streamed, synth.sample(75, batch=16, seed=4))

    def test_partial_stream_restores_training_mode(self, fitted, method):
        synth = fitted[method]
        stream = synth.sample_iter(100, batch=10, seed=1)
        next(stream)
        stream.close()  # abandon mid-stream: session must unwind
        model = getattr(synth, "generator", None) or getattr(
            synth, "model", None)
        if model is not None:
            assert model.training


class TestSamplingSession:
    def test_generator_eval_once_per_stream(self, fitted):
        synth = fitted["gan"]
        calls = []
        original_eval = type(synth.generator).eval

        class Spy:
            def __get__(self, obj, objtype=None):
                def eval_():
                    calls.append("eval")
                    return original_eval(obj)
                return eval_

        try:
            type(synth.generator).eval = Spy()
            synth.sample(100, batch=10, seed=2)
        finally:
            type(synth.generator).eval = original_eval
        # One eval per stream (plus none per chunk); the module tree is
        # walked recursively, so only count top-level generator calls.
        assert calls == ["eval"]
        assert synth.generator.training

    def test_nested_sessions_stay_in_eval(self, fitted):
        synth = fitted["gan"]
        with synth._sampling_session():
            assert not synth.generator.training
            with synth._sampling_session():
                assert not synth.generator.training
            assert not synth.generator.training
        assert synth.generator.training

    def test_refit_voids_open_sessions(self, table):
        """A stream left open across a refit must not poison the depth
        counter: post-refit sampling still runs in eval mode and the
        stale stream's unwind must not flip the new model to train."""
        synth = make_synthesizer("gan", seed=0, epochs=1,
                                 iterations_per_epoch=3).fit(table)
        stale = synth.sample_iter(100, batch=10, seed=1)
        next(stale)  # session now open at depth 1
        synth.fit(table)  # rebuilds the generator, voids the session
        with synth._sampling_session():
            assert not synth.generator.training  # eval ran despite refit
            stale.close()  # stale unwind is a no-op for the new session
            assert not synth.generator.training
        assert synth.generator.training


class TestFastMathStreaming:
    def test_float32_sample_iter_matches_sample(self, table):
        with nn.default_dtype("float32"):
            synth = make_synthesizer("gan", seed=0, epochs=1,
                                     iterations_per_epoch=3).fit(table)
            streamed = concat_all(list(synth.sample_iter(120, seed=8)))
            assert_tables_equal(streamed, synth.sample(120, seed=8))

    def test_float32_cnn_sampling(self, table):
        with nn.default_dtype("float32"):
            config = DesignConfig(generator="cnn",
                                  categorical_encoding="ordinal",
                                  numerical_normalization="simple")
            synth = make_synthesizer("gan", seed=0, config=config, epochs=1,
                                     iterations_per_epoch=3).fit(table)
            streamed = concat_all(list(synth.sample_iter(90, batch=32,
                                                         seed=5)))
            assert_tables_equal(streamed, synth.sample(90, batch=32, seed=5))

    def test_folded_mlp_sampling_close_to_composed(self, table):
        """The fast-math BN-folded generator stays numerically faithful
        to the float64 composed eval path given identical weights and
        noise."""
        from repro.nn import Tensor, no_grad

        synth = make_synthesizer("gan", seed=0, epochs=1,
                                 iterations_per_epoch=3).fit(table)
        z = np.random.default_rng(3).standard_normal(
            (64, synth.config.z_dim))
        generator = synth.generator
        generator.eval()
        with no_grad():
            ref = generator(Tensor(z)).data
        generator.train()
        state = generator.state_dict()
        with nn.default_dtype("float32"):
            synth32 = make_synthesizer("gan", seed=0, epochs=1,
                                       iterations_per_epoch=3).fit(table)
            synth32.generator.load_state_dict(
                {k: v.astype(np.float32) for k, v in state.items()})
            synth32.generator.eval()
            with no_grad():
                out = synth32.generator(Tensor(z)).data  # folded-BN path
            synth32.generator.train()
        np.testing.assert_allclose(out, ref, atol=5e-3, rtol=5e-2)


class TestFacadeSampleBatch:
    def test_sample_batch_forwarded(self, table):
        result = synthesize(table, method="privbayes", epsilon=None, n=64,
                            sample_seed=3, sample_batch=16)
        reference = synthesize(table, method="privbayes", epsilon=None, n=64,
                               sample_seed=3, sample_batch=16)
        assert_tables_equal(result.table, reference.table)
        assert len(result.table) == 64
