"""Clean-refit contract: re-fitting never reuses stale state."""

import numpy as np
import pytest

import repro
from repro.datasets.schema import Attribute, CATEGORICAL, NUMERICAL, Schema, Table

from tests.conftest import make_mixed_table

TINY_FIT = dict(epochs=1, iterations_per_epoch=3)


def other_table(n=120, seed=42):
    """A table with a different schema than make_mixed_table's."""
    rng = np.random.default_rng(seed)
    schema = Schema(
        attributes=(
            Attribute("height", NUMERICAL),
            Attribute("group", CATEGORICAL, categories=("g0", "g1")),
        ))
    return Table(schema, {"height": rng.normal(170.0, 9.0, n),
                          "group": rng.integers(0, 2, n)})


@pytest.mark.parametrize("method,kwargs", [
    ("privbayes", {"epsilon": None}),
    ("gan", TINY_FIT),
    ("vae", TINY_FIT),
])
class TestRefitAcrossSchemas:
    def test_refit_samples_the_new_schema_only(self, method, kwargs):
        synth = repro.make_synthesizer(method, seed=0, **kwargs)
        synth.fit(make_mixed_table(n=150, seed=0))
        synth.fit(other_table())
        out = synth.sample(25, seed=1)
        assert out.schema.names == ["height", "group"]
        assert out.column("group").max() < 2

    def test_refit_after_streaming_discards_stream_state(self, method,
                                                         kwargs):
        synth = repro.make_synthesizer(method, seed=0, **kwargs)
        synth.partial_fit(make_mixed_table(n=60, seed=0))
        # A clean fit abandons the pending stream entirely.
        synth.fit(other_table())
        assert synth.stream_rows == 0
        assert synth.sample(10, seed=2).schema.names == ["height", "group"]


class TestFamilySpecificState:
    def test_privbayes_drops_old_discretizers(self):
        synth = repro.make_synthesizer("privbayes", epsilon=None, seed=0)
        synth.fit(make_mixed_table(n=100, seed=0))
        assert "age" in synth._discretizers
        synth.fit(other_table())
        assert set(synth._discretizers) == {"height"}
        assert {n.name for n in synth.network.nodes} == {"height", "group"}

    def test_gan_drops_old_label_frequencies(self):
        synth = repro.make_synthesizer("gan", seed=0, **TINY_FIT)
        synth.fit(make_mixed_table(n=100, seed=0))  # labeled table
        synth.fit(other_table())                    # unlabeled table
        assert synth._label_freq is None

    def test_neural_families_drop_old_reservoirs(self):
        for method in ("gan", "vae"):
            synth = repro.make_synthesizer(method, seed=0, **TINY_FIT)
            synth.fit(make_mixed_table(n=100, seed=0))
            assert synth._reservoir is not None
            first_seen = synth._reservoir.n_seen
            synth.fit(other_table(n=70))
            # Re-seeded from scratch on the new table, not accumulated.
            assert synth._reservoir.n_seen == 70
            assert first_seen == 100
