"""repro.synthesize facade: method-generic selection loop + provenance."""

import numpy as np
import pytest

import repro
from repro import datasets
from repro.api import SynthesisResult
from repro.api.facade import synthesize
from repro.api.selection import extend_to, score_snapshots
from repro.errors import ConfigError

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def split():
    table = make_mixed_table(n=300, seed=9)
    return datasets.split(table, seed=0)


class TestFacade:
    def test_gan_with_selection(self, split):
        train, valid, _ = split
        result = synthesize(train, method="gan", valid=valid, epochs=3,
                            iterations_per_epoch=4, seed=0)
        assert isinstance(result, SynthesisResult)
        assert result.method == "gan"
        assert len(result.table) == len(train)
        assert len(result.curves["selection"]) == 3
        assert result.best_epoch == int(np.argmax(result.curves["selection"]))
        assert result.final_score == max(result.curves["selection"])
        # The winning snapshot is left active on the returned synthesizer.
        assert result.synthesizer.active_snapshot == result.best_epoch
        assert result.provenance["selection_criterion"].startswith("f1:")
        assert result.provenance["n_synthetic"] == len(train)

    def test_gan_without_valid_skips_selection(self, split):
        train, _, _ = split
        result = synthesize(train, method="gan", epochs=2,
                            iterations_per_epoch=3, seed=0, n=50)
        assert result.best_epoch is None
        assert "selection" not in result.curves
        assert len(result.table) == 50

    def test_vae_and_privbayes(self, split):
        train, _, _ = split
        for method, kwargs in (("vae", dict(epochs=1,
                                            iterations_per_epoch=2)),
                               ("privbayes", dict(epsilon=None))):
            result = synthesize(train, method=method, n=40, **kwargs)
            assert result.method == method
            assert len(result.table) == 40
            assert result.table.schema.names == train.schema.names

    def test_privbayes_alias(self, split):
        train, _, _ = split
        result = synthesize(train, method="pb", epsilon=None, n=20)
        assert result.method == "privbayes"

    def test_size_ratio(self, split):
        train, valid, _ = split
        result = synthesize(train, method="gan", valid=valid, epochs=2,
                            iterations_per_epoch=3, size_ratio=0.5, seed=0)
        assert len(result.table) == round(len(train) * 0.5)

    def test_training_curves_present(self, split):
        train, _, _ = split
        gan = synthesize(train, method="gan", epochs=2,
                         iterations_per_epoch=3, n=20, seed=0)
        assert len(gan.curves["g_loss"]) == 2
        vae = synthesize(train, method="vae", epochs=2,
                         iterations_per_epoch=3, n=20, seed=0)
        assert len(vae.curves["loss"]) == 2

    def test_unknown_method(self, split):
        train, _, _ = split
        with pytest.raises(ConfigError, match="unknown synthesizer"):
            synthesize(train, method="nope")

    def test_rejects_family_mismatched_kwargs(self, split):
        train, _, _ = split
        with pytest.raises(ConfigError, match="does not accept"):
            synthesize(train, method="vae", epsilon=0.5)

    def test_unset_facade_params_keep_family_defaults(self, split):
        """epochs/iterations left unset must not clobber family defaults."""
        train, valid, _ = split
        small = train.take(np.arange(40))
        result = synthesize(small, method="gan", valid=None, n=10,
                            iterations_per_epoch=1, seed=0)
        assert result.synthesizer.epochs == 10  # GANSynthesizer default
        assert len(result.table) == 10

    def test_explicit_none_kwarg_passes_through(self, split):
        """epsilon=None is meaningful (noise-free PB), not an unset default."""
        train, _, _ = split
        result = synthesize(train, method="privbayes", epsilon=None, n=10)
        assert result.synthesizer.epsilon is None

    def test_config_silently_dropped_only_when_none(self, split):
        train, _, _ = split
        from repro.core.design_space import DesignConfig

        with pytest.raises(ConfigError, match="does not accept"):
            synthesize(train, method="privbayes", config=DesignConfig())

    def test_reproducible_output_with_sample_seed(self, split):
        train, _, _ = split
        a = synthesize(train, method="privbayes", epsilon=None, n=30,
                       seed=0, sample_seed=3)
        b = synthesize(train, method="privbayes", epsilon=None, n=30,
                       seed=0, sample_seed=3)
        for name in train.schema.names:
            np.testing.assert_array_equal(a.table.column(name),
                                          b.table.column(name))

    def test_sample_seed_controls_output_on_selection_path(self, split):
        """With selection active, sample_seed must still steer the output
        (it bypasses the scoring-table cache)."""
        train, valid, _ = split
        common = dict(method="gan", valid=valid, epochs=2,
                      iterations_per_epoch=3, seed=0, n=40)
        a = synthesize(train, sample_seed=7, **common)
        b = synthesize(train, sample_seed=7, **common)
        c = synthesize(train, sample_seed=8, **common)
        any_diff_ac = False
        for name in train.schema.names:
            np.testing.assert_array_equal(a.table.column(name),
                                          b.table.column(name))
            if not np.array_equal(a.table.column(name), c.table.column(name)):
                any_diff_ac = True
        assert any_diff_ac

    def test_top_level_export(self, split):
        train, _, _ = split
        assert repro.synthesize is synthesize
        assert "gan" in repro.available_synthesizers()


class TestSnapshotCaching:
    """The selection loop reuses scoring tables (no resampling waste)."""

    def test_winner_sample_is_reused(self, split):
        train, valid, _ = split
        result = synthesize(train, method="gan", valid=valid, epochs=2,
                            iterations_per_epoch=3, seed=0)
        # Re-run selection on an identically-seeded twin: the facade's
        # output must be a prefix of the winning snapshot's scoring
        # table, not a fresh resample.
        twin = repro.make_synthesizer("gan", epochs=2,
                                      iterations_per_epoch=3,
                                      seed=0).fit(train)
        scores = score_snapshots(twin, valid, seed=0)
        assert scores.best_index == result.best_epoch
        cached = scores.tables[scores.best_index]
        n = len(result.table)
        assert n <= len(cached)
        for name in train.schema.names:
            np.testing.assert_array_equal(result.table.column(name),
                                          cached.column(name)[:n])

    def test_extend_to_prefix(self, split):
        train, _, _ = split
        synth = repro.make_synthesizer("privbayes", epsilon=None,
                                       seed=0).fit(train)
        cached = synth.sample(50, seed=1)
        out = extend_to(cached, 20, synth)
        for name in train.schema.names:
            np.testing.assert_array_equal(out.column(name),
                                          cached.column(name)[:20])

    def test_extend_to_tops_up(self, split):
        train, _, _ = split
        synth = repro.make_synthesizer("privbayes", epsilon=None,
                                       seed=0).fit(train)
        cached = synth.sample(10, seed=1)
        out = extend_to(cached, 35, synth, seed=2)
        assert len(out) == 35
        for name in train.schema.names:
            np.testing.assert_array_equal(out.column(name)[:10],
                                          cached.column(name))

    def test_context_synthesize_forwards_budget(self, split):
        from repro.core.experiment import ExperimentContext

        ctx = ExperimentContext("adult", n_records=240, epochs=2,
                                iterations_per_epoch=3, seed=0)
        result = ctx.synthesize("gan")
        assert result.synthesizer.epochs == 2
        assert result.synthesizer.iterations_per_epoch == 3
        assert len(result.curves["selection"]) == 2
        pb = ctx.synthesize("privbayes", valid=False, epsilon=None, n=15)
        assert len(pb.table) == 15

    def test_score_snapshots_returns_tables(self, split):
        train, valid, _ = split
        synth = repro.make_synthesizer("gan", epochs=2,
                                       iterations_per_epoch=3,
                                       seed=0).fit(train)
        scores = score_snapshots(synth, valid, sample_size=120)
        assert len(scores.scores) == 2
        assert len(scores.tables) == 2
        assert all(len(t) == 120 for t in scores.tables)
        assert scores.best_index == int(np.argmax(scores.scores))


def test_no_valid_table_skips_per_epoch_snapshots(mixed_table):
    """Without a validation table the facade trains with lazy snapshots,
    keeping only the final generator state in memory."""
    result = repro.synthesize(mixed_table, method="gan",
                              epochs=3, iterations_per_epoch=2)
    snaps = result.synthesizer.snapshots
    assert [s is not None for s in snaps] == [False, False, True]


def test_valid_table_keeps_all_snapshots(mixed_table):
    valid = make_mixed_table(n=80, seed=9)
    result = repro.synthesize(mixed_table, method="gan", valid=valid,
                              epochs=2, iterations_per_epoch=2)
    assert all(s is not None for s in result.synthesizer.snapshots)
    assert result.best_epoch is not None
