"""Seed substreams, the sharded-seed contract, and count validation."""

import numpy as np
import pytest

from repro.api import chunk_plan, derive_seed, fresh_seed, make_synthesizer
from repro.api.seeding import seed_sequence, substream

from tests.conftest import make_mixed_table


def assert_tables_equal(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


# ----------------------------------------------------------------------
# Substream derivation
# ----------------------------------------------------------------------
class TestSubstreams:
    def test_same_key_same_stream(self):
        a = substream(7, "chunk", 3).standard_normal(8)
        b = substream(7, "chunk", 3).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_different_tags_differ(self):
        draws = {tags: substream(7, *tags).standard_normal(4).tobytes()
                 for tags in [("chunk", 0), ("chunk", 1), ("table", 0),
                              ("chunk", "0"), ("worker", 0)]}
        assert len(set(draws.values())) == len(draws)

    def test_different_seeds_differ(self):
        a = substream(0, "chunk", 0).standard_normal(4)
        b = substream(1, "chunk", 0).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_derive_seed_deterministic_and_bounded(self):
        values = [derive_seed(3, "table", name)
                  for name in ("customers", "orders", "customers")]
        assert values[0] == values[2]
        assert values[0] != values[1]
        assert all(0 <= v < 2 ** 63 for v in values)

    def test_seed_validation(self):
        for bad in (-1, 1.5, "7", True, None):
            with pytest.raises(ValueError, match="seed"):
                seed_sequence(bad, "x")

    def test_fresh_seed_varies(self):
        seeds = {fresh_seed() for _ in range(8)}
        assert len(seeds) > 1
        assert all(0 <= s < 2 ** 63 for s in seeds)


# ----------------------------------------------------------------------
# Chunk plans + argument validation (the "name the argument" contract)
# ----------------------------------------------------------------------
class TestChunkPlan:
    def test_plan_covers_rows(self):
        plan = chunk_plan(10, 4)
        assert plan == [(0, 0, 4), (1, 4, 4), (2, 8, 2)]
        assert chunk_plan(0, 4) == []
        assert chunk_plan(4, 4) == [(0, 0, 4)]

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "16", None, True])
    def test_bad_batch_names_argument(self, bad):
        with pytest.raises(ValueError, match="batch"):
            chunk_plan(10, bad)

    @pytest.mark.parametrize("bad", [-1, 1.5, "10", True])
    def test_bad_n_names_argument(self, bad):
        with pytest.raises(ValueError, match="n must"):
            chunk_plan(bad, 4)


@pytest.fixture(scope="module")
def fitted_pb():
    table = make_mixed_table(n=180, seed=2)
    return make_synthesizer("privbayes", epsilon=None, seed=0).fit(table)


class TestSampleArgValidation:
    @pytest.mark.parametrize("bad", [0, -2, 3.5, "64", True])
    def test_sample_iter_bad_batch(self, fitted_pb, bad):
        with pytest.raises(ValueError, match="batch"):
            fitted_pb.sample_iter(10, batch=bad)

    @pytest.mark.parametrize("bad", [-1, 2.5, "10"])
    def test_sample_iter_bad_n(self, fitted_pb, bad):
        with pytest.raises(ValueError, match="n must"):
            fitted_pb.sample_iter(bad)

    def test_sample_zero_rows_rejected(self, fitted_pb):
        with pytest.raises(ValueError, match="n must be positive"):
            fitted_pb.sample(0)

    def test_errors_are_eager_not_lazy(self, fitted_pb):
        # sample_iter validates before the generator starts: the bad
        # argument surfaces at the call, not at first iteration.
        with pytest.raises(ValueError, match="batch"):
            fitted_pb.sample_iter(10, batch=0)


# ----------------------------------------------------------------------
# The sharded-seed contract
# ----------------------------------------------------------------------
class TestSampleChunks:
    def test_chunks_match_full_sample(self, fitted_pb):
        full = fitted_pb.sample(50, batch=16, seed=9)
        parts = dict(fitted_pb.sample_chunks(50, batch=16, seed=9))
        assert sorted(parts) == [0, 1, 2, 3]
        out = parts[0]
        for index in (1, 2, 3):
            out = out.concat_rows(parts[index])
        assert_tables_equal(out, full)

    def test_disjoint_shards_reassemble(self, fitted_pb):
        full = fitted_pb.sample(40, batch=8, seed=4)
        even = dict(fitted_pb.sample_chunks(40, batch=8, seed=4,
                                            indices=[0, 2, 4]))
        odd = dict(fitted_pb.sample_chunks(40, batch=8, seed=4,
                                           indices=[3, 1]))
        merged = {**even, **odd}
        out = merged[0]
        for index in range(1, 5):
            out = out.concat_rows(merged[index])
        assert_tables_equal(out, full)

    def test_chunk_independent_of_other_chunks(self, fitted_pb):
        solo = dict(fitted_pb.sample_chunks(40, batch=8, seed=4,
                                            indices=[2]))[2]
        in_full = dict(fitted_pb.sample_chunks(40, batch=8, seed=4))[2]
        assert_tables_equal(solo, in_full)

    def test_requires_seed(self, fitted_pb):
        with pytest.raises(ValueError, match="seed"):
            fitted_pb.sample_chunks(10, batch=4)

    def test_index_out_of_range(self, fitted_pb):
        with pytest.raises(ValueError, match="chunk index"):
            list(fitted_pb.sample_chunks(10, batch=4, seed=1, indices=[9]))

    def test_gan_chunks_match_full_sample(self):
        table = make_mixed_table(n=160, seed=5)
        synth = make_synthesizer("gan", seed=0, epochs=1,
                                 iterations_per_epoch=3).fit(table)
        full = synth.sample(60, batch=20, seed=11)
        parts = dict(synth.sample_chunks(60, batch=20, seed=11))
        out = parts[0].concat_rows(parts[1]).concat_rows(parts[2])
        assert_tables_equal(out, full)


# ----------------------------------------------------------------------
# spawn_sampler (worker prep)
# ----------------------------------------------------------------------
class TestSpawnSampler:
    def test_pins_eval_and_keeps_determinism(self, tmp_path):
        table = make_mixed_table(n=160, seed=5)
        synth = make_synthesizer("gan", seed=0, epochs=1,
                                 iterations_per_epoch=3).fit(table)
        reference = synth.sample(30, batch=16, seed=2)
        synth.save(tmp_path / "m")

        from repro.api import load_synthesizer

        worker = load_synthesizer(tmp_path / "m").spawn_sampler(0)
        assert worker.discriminator is None  # sampling-only worker
        assert_tables_equal(worker.sample(30, batch=16, seed=2), reference)
        # Eval stays pinned between requests: no train() flip happened.
        assert not worker.generator.training

    def test_unseeded_streams_disjoint_across_workers(self, tmp_path):
        table = make_mixed_table(n=160, seed=5)
        synth = make_synthesizer("privbayes", epsilon=None, seed=0)
        synth.fit(table)
        synth.save(tmp_path / "pb")

        from repro.api import load_synthesizer

        w0 = load_synthesizer(tmp_path / "pb").spawn_sampler(0)
        w1 = load_synthesizer(tmp_path / "pb").spawn_sampler(1)
        a = w0.sample(40)
        b = w1.sample(40)
        assert any(not np.array_equal(a.column(c), b.column(c))
                   for c in a.schema.names)
