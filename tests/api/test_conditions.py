"""Explicit conditioning through fit / sample / sample_iter.

Covers the conditional-sampling satellite: per-row label conditions on
the paper's CGAN, arbitrary context-matrix conditioning, validation,
streaming-session behaviour, and persistence of the conditioning spec.
"""

import numpy as np
import pytest

from repro.api import load_synthesizer, make_synthesizer
from repro.core.design_space import DesignConfig
from repro.errors import ConfigError, TrainingError
from repro.gan.synthesizer import GANSynthesizer

from tests.conftest import make_mixed_table

FAST = dict(epochs=1, iterations_per_epoch=3, keep_snapshots=False)


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=120, seed=0)


@pytest.fixture(scope="module")
def label_synth(table):
    synth = GANSynthesizer(DesignConfig(conditional=True), **FAST, seed=0)
    synth.fit(table)
    return synth


@pytest.fixture(scope="module")
def context_synth(table):
    rng = np.random.default_rng(0)
    synth = GANSynthesizer(DesignConfig(), **FAST, seed=0)
    synth.fit(table, conditions=rng.normal(size=(len(table), 3)))
    return synth


# ----------------------------------------------------------------------
# Label conditioning
# ----------------------------------------------------------------------
def test_explicit_label_conditions_are_honoured(label_synth):
    labels = np.array([1] * 20 + [0] * 15)
    out = label_synth.sample(35, conditions=labels, seed=4)
    np.testing.assert_array_equal(out.column("label"), labels)


def test_label_conditions_survive_chunking(label_synth):
    labels = np.arange(30) % 2
    out = label_synth.sample(30, batch=7, conditions=labels, seed=1)
    np.testing.assert_array_equal(out.column("label"), labels)


def test_label_conditions_out_of_range(label_synth):
    with pytest.raises(ValueError, match="codes in"):
        label_synth.sample(3, conditions=np.array([0, 1, 5]), seed=0)


def test_conditions_length_validated(label_synth):
    with pytest.raises(ValueError, match="one row per record"):
        label_synth.sample(10, conditions=np.zeros(4, dtype=np.int64))


def test_marginal_draw_still_default(label_synth):
    out = label_synth.sample(40, seed=0)
    assert set(np.unique(out.column("label"))) <= {0, 1}


# ----------------------------------------------------------------------
# Context conditioning
# ----------------------------------------------------------------------
def test_context_sampling_requires_conditions(context_synth):
    with pytest.raises(ValueError, match="context"):
        context_synth.sample(5, seed=0)


def test_context_conditions_shape_checked(context_synth):
    with pytest.raises(ValueError, match="one row per record"):
        context_synth.sample(5, conditions=np.zeros((4, 3)))
    with pytest.raises(ValueError, match="expected context of shape"):
        context_synth.sample(5, conditions=np.zeros((5, 2)))


def test_context_streaming_matches_one_shot(context_synth):
    context = np.random.default_rng(3).normal(size=(40, 3))
    whole = context_synth.sample(40, batch=64, conditions=context, seed=9)
    chunks = list(context_synth.sample_iter(40, batch=13,
                                            conditions=context, seed=9))
    assert sum(len(c) for c in chunks) == 40
    # Same seed, same conditions: the streamed rows are the same draw
    # (chunked RNG consumption differs only through batching of the
    # noise calls, so compare against an identically-chunked run).
    again = list(context_synth.sample_iter(40, batch=13,
                                           conditions=context, seed=9))
    for a, b in zip(chunks, again):
        for name in a.columns:
            np.testing.assert_array_equal(a.columns[name], b.columns[name])
    assert whole.schema.names == chunks[0].schema.names


def test_context_conditioning_changes_output(context_synth):
    low = np.full((64, 3), -2.0)
    high = np.full((64, 3), 2.0)
    out_low = context_synth.sample(64, conditions=low, seed=5)
    out_high = context_synth.sample(64, conditions=high, seed=5)
    different = any(
        not np.array_equal(out_low.columns[n], out_high.columns[n])
        for n in out_low.columns)
    assert different


def test_context_fit_validation(table):
    with pytest.raises(TrainingError, match="matrix"):
        GANSynthesizer(DesignConfig(), **FAST).fit(
            table, conditions=np.zeros(len(table)))
    with pytest.raises(TrainingError, match="vector-form"):
        GANSynthesizer(DesignConfig(generator="cnn",
                                    categorical_encoding="ordinal",
                                    numerical_normalization="simple"),
                       **FAST).fit(
            table, conditions=np.zeros((len(table), 2)))
    with pytest.raises(TrainingError, match="unconditional vtrain"):
        GANSynthesizer(DesignConfig(conditional=True), **FAST).fit(
            table, conditions=np.zeros((len(table), 2)))
    with pytest.raises(TrainingError, match="unconditional vtrain"):
        GANSynthesizer(DesignConfig(training="wtrain"), **FAST).fit(
            table, conditions=np.zeros((len(table), 2)))


def test_unconditional_rejects_sample_conditions(table):
    synth = GANSynthesizer(DesignConfig(), **FAST, seed=0).fit(table)
    with pytest.raises(ValueError, match="without conditioning"):
        synth.sample(4, conditions=np.zeros((4, 2)))


# ----------------------------------------------------------------------
# Families without conditioning support
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["vae", "privbayes"])
def test_unsupported_families_raise(table, method):
    kwargs = FAST if method == "vae" else {}
    synth = make_synthesizer(method, seed=0, **{
        k: v for k, v in kwargs.items() if k != "keep_snapshots"})
    with pytest.raises(ConfigError, match="does not support"):
        synth.fit(table, conditions=np.zeros((len(table), 2)))
    synth.fit(table)
    with pytest.raises(ConfigError, match="does not support"):
        synth.sample(5, conditions=np.zeros((5, 2)))


# ----------------------------------------------------------------------
# Persistence of the conditioning spec
# ----------------------------------------------------------------------
def test_context_spec_roundtrip(tmp_path, context_synth):
    context_synth.save(tmp_path / "ctx")
    restored = load_synthesizer(tmp_path / "ctx")
    assert restored._cond_kind == "context"
    assert restored._cond_dim == 3
    context = np.random.default_rng(5).normal(size=(12, 3))
    a = context_synth.sample(12, conditions=context, seed=2)
    b = restored.sample(12, conditions=context, seed=2)
    for name in a.columns:
        np.testing.assert_array_equal(a.columns[name], b.columns[name])
    with pytest.raises(ValueError, match="context"):
        restored.sample(3, seed=0)


def test_label_spec_roundtrip(tmp_path, label_synth):
    label_synth.save(tmp_path / "lab")
    restored = load_synthesizer(tmp_path / "lab")
    assert restored._cond_kind == "label"
    labels = np.array([0, 1, 1, 0, 1])
    out = restored.sample(5, conditions=labels, seed=8)
    np.testing.assert_array_equal(out.column("label"), labels)
