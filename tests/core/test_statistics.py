"""Statistical fidelity diagnostics."""

import numpy as np
import pytest

from repro.core.statistics import (
    association_difference, correlation_difference, cramers_v,
    fidelity_summary, marginal_distances,
)
from repro.datasets.schema import Table
from repro.errors import SchemaError

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def table():
    return make_mixed_table(n=800, seed=21)


def shuffled(table, seed=0):
    rng = np.random.default_rng(seed)
    return Table(table.schema, {name: rng.permutation(col)
                                for name, col in table.columns.items()})


class TestMarginalDistances:
    def test_identical_tables_zero(self, table):
        distances = marginal_distances(table, table)
        for value in distances.values():
            assert value == pytest.approx(0.0, abs=1e-12)

    def test_shuffled_columns_keep_marginals(self, table):
        distances = marginal_distances(table, shuffled(table))
        for value in distances.values():
            assert value == pytest.approx(0.0, abs=1e-12)

    def test_shifted_numeric_detected(self, table):
        cols = {k: v.copy() for k, v in table.columns.items()}
        cols["age"] = cols["age"] + 100.0
        moved = Table(table.schema, cols)
        assert marginal_distances(table, moved)["age"] > 0.5

    def test_schema_mismatch(self, table, numeric_table):
        with pytest.raises(SchemaError):
            marginal_distances(table, numeric_table)


class TestCorrelationDifference:
    def test_identical_zero(self, table):
        assert correlation_difference(table, table) == pytest.approx(0.0)

    def test_shuffling_destroys_correlation(self, table):
        # age and income are label-correlated in the fixture.
        assert correlation_difference(table, shuffled(table)) > 0.05

    def test_single_numeric_returns_zero(self, numeric_table):
        # numeric_table has two numerics; drop to one via schema trickery:
        # simpler — a categorical-only table.
        from repro.datasets.simulated import sdata_cat

        cats = sdata_cat(n_records=100, seed=0)
        assert correlation_difference(cats, cats) == 0.0

    def test_zero_variance_column_warns_and_is_defined(self, numeric_table):
        # A synthesizer that collapses "x" to a constant: its correlation
        # is undefined, *defined* as 0.0, and warned about by name.
        from repro.core.statistics import DegenerateColumnWarning

        cols = {k: v.copy() for k, v in numeric_table.columns.items()}
        cols["x"] = np.full_like(cols["x"], 3.5)
        collapsed = Table(numeric_table.schema, cols)
        with pytest.warns(DegenerateColumnWarning, match="'x'.*synthetic"):
            diff = correlation_difference(numeric_table, collapsed)
        # |corr_real(x, y)| - 0, finite by definition.
        assert np.isfinite(diff)
        assert diff >= 0.0

    def test_zero_variance_everywhere_scores_zero_not_nan(self, numeric_table):
        from repro.core.statistics import DegenerateColumnWarning

        cols = {k: np.full_like(v, 1.0) if v.dtype.kind == "f" else v.copy()
                for k, v in numeric_table.columns.items()}
        flat = Table(numeric_table.schema, cols)
        with pytest.warns(DegenerateColumnWarning):
            diff = correlation_difference(flat, flat)
        assert diff == pytest.approx(0.0)

    def test_healthy_tables_do_not_warn(self, table):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            correlation_difference(table, shuffled(table))


class TestCramersV:
    def test_perfect_association(self, rng):
        x = rng.integers(0, 3, 1000)
        assert cramers_v(x, x, 3, 3) == pytest.approx(1.0, abs=0.01)

    def test_independence_near_zero(self, rng):
        x = rng.integers(0, 3, 5000)
        y = rng.integers(0, 4, 5000)
        assert cramers_v(x, y, 3, 4) < 0.05

    def test_degenerate_domains(self):
        assert cramers_v(np.zeros(10, dtype=int), np.zeros(10, dtype=int),
                         1, 1) == 0.0


class TestAssociationAndSummary:
    def test_association_identical_zero(self, table):
        assert association_difference(table, table) == pytest.approx(0.0)

    def test_shuffling_reduces_association(self, table):
        # job is label-dependent in the fixture; shuffling kills it.
        assert association_difference(table, shuffled(table)) > 0.01

    def test_fidelity_summary_keys(self, table):
        summary = fidelity_summary(table, shuffled(table))
        assert set(summary) == {"mean_marginal_tv", "max_marginal_tv",
                                "correlation_diff", "association_diff"}
        assert summary["mean_marginal_tv"] == pytest.approx(0.0, abs=1e-12)
