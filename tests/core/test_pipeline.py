"""Pipeline: snapshot selection, size ratio, hyper-parameter search."""

import numpy as np
import pytest

from repro.core import (
    DesignConfig, hyperparameter_candidates, random_search,
    run_gan_synthesis, snapshot_f1_curve,
)
from repro.core.experiment import ExperimentContext
from repro.gan import GANSynthesizer

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def split():
    table = make_mixed_table(n=360, seed=5)
    from repro import datasets

    return datasets.split(table, seed=0)


class TestPipeline:
    def test_run_selects_best_epoch(self, split):
        train, valid, test = split
        run = run_gan_synthesis(DesignConfig(), train, valid, epochs=3,
                                iterations_per_epoch=5, seed=0)
        assert len(run.epoch_f1) == 3
        assert run.best_epoch == int(np.argmax(run.epoch_f1))
        assert len(run.synthetic) == len(train)

    def test_size_ratio(self, split):
        train, valid, _ = split
        run = run_gan_synthesis(DesignConfig(), train, valid, epochs=2,
                                iterations_per_epoch=3, size_ratio=0.5,
                                seed=0)
        assert len(run.synthetic) == round(len(train) * 0.5)

    def test_snapshot_curve_length(self, split):
        train, valid, _ = split
        synth = GANSynthesizer(DesignConfig(), epochs=3,
                               iterations_per_epoch=4, seed=0).fit(train)
        curve = snapshot_f1_curve(synth, valid, sample_size=200)
        assert len(curve) == 3
        assert all(0.0 <= v <= 1.0 for v in curve)

    def test_unlabeled_table_uses_fidelity_selection(self):
        """Bing-style unlabeled tables must not always pick epoch 0."""
        from repro import datasets
        from repro.core.pipeline import snapshot_fidelity_curve

        table = datasets.load("bing", n_records=360, seed=0)
        train, valid, _ = datasets.split(table, seed=0)
        run = run_gan_synthesis(DesignConfig(), train, valid, epochs=3,
                                iterations_per_epoch=4, seed=0)
        assert len(run.epoch_f1) == 3
        # Fidelity scores are negative mean marginal TVs.
        assert all(v <= 0.0 for v in run.epoch_f1)
        synth = GANSynthesizer(DesignConfig(), epochs=2,
                               iterations_per_epoch=3, seed=0).fit(train)
        curve = snapshot_fidelity_curve(synth, valid, sample_size=150)
        assert len(curve) == 2


class TestModelSelection:
    def test_candidates_vary(self):
        base = DesignConfig()
        candidates = hyperparameter_candidates(base, n=6, seed=0)
        assert len(candidates) == 6
        assert len({(c.lr_g, c.hidden_dim, c.batch_size, c.z_dim)
                    for c in candidates}) > 1

    def test_random_search_returns_best(self, split):
        train, valid, _ = split
        result = random_search(DesignConfig(), train, valid, n_trials=2,
                               epochs=2, iterations_per_epoch=3, seed=0)
        assert len(result.curves) == 2
        assert result.best_run.final_f1 == max(
            max(curve) for curve in result.curves)


class TestExperimentContext:
    def test_context_splits(self):
        ctx = ExperimentContext("adult", n_records=300, epochs=1,
                                iterations_per_epoch=2, seed=0)
        assert len(ctx.train) + len(ctx.valid) + len(ctx.test) == 300

    def test_gan_and_diff_row(self):
        ctx = ExperimentContext("adult", n_records=300, epochs=2,
                                iterations_per_epoch=3, seed=0)
        run = ctx.gan()
        row = ctx.diff_row(run.synthetic, classifiers=("DT10",))
        assert set(row) == {"DT10"}
        assert 0.0 <= row["DT10"] <= 1.0

    def test_privbayes_and_vae_helpers(self):
        ctx = ExperimentContext("adult", n_records=300, epochs=1,
                                iterations_per_epoch=2, seed=0)
        fake_pb = ctx.privbayes(epsilon=1.6)
        assert len(fake_pb) == len(ctx.train)
