"""Evaluation framework: classification/clustering/AQP utility, privacy."""

import numpy as np
import pytest

from repro.core import (
    aqp_utility, classification_utilities, classification_utility,
    classifier_f1, clustering_utility, privacy_report,
)
from repro.datasets.schema import Table

from tests.conftest import make_mixed_table


@pytest.fixture(scope="module")
def tables():
    train = make_mixed_table(n=400, seed=0)
    test = make_mixed_table(n=200, seed=1)
    return train, test


def shuffled_copy(table, seed=0):
    """Column-shuffled table: marginals kept, correlations destroyed."""
    rng = np.random.default_rng(seed)
    return Table(table.schema, {name: rng.permutation(col)
                                for name, col in table.columns.items()})


class TestClassificationUtility:
    def test_perfect_synthetic_near_zero_diff(self, tables):
        train, test = tables
        result = classification_utility(train, train, test, "DT10")
        assert result.diff == pytest.approx(0.0, abs=1e-9)

    def test_garbage_synthetic_large_diff(self, tables):
        train, test = tables
        garbage = shuffled_copy(train)
        good = classification_utility(train, train, test, "DT10").diff
        bad = classification_utility(garbage, train, test, "DT10").diff
        assert bad > good

    def test_single_class_synthetic_scores_zero(self, tables):
        train, test = tables
        cols = {k: v.copy() for k, v in train.columns.items()}
        cols["label"] = np.zeros(len(train), dtype=np.int64)
        degenerate = Table(train.schema, cols)
        assert classifier_f1(degenerate, test) == 0.0

    def test_utilities_cover_requested_classifiers(self, tables):
        train, test = tables
        results = classification_utilities(train, train, test,
                                           classifiers=("DT10", "LR"))
        assert set(results) == {"DT10", "LR"}
        for value in results.values():
            assert 0.0 <= value.f1_real <= 1.0


class TestClusteringUtility:
    def test_identical_tables_zero_diff(self, tables):
        train, _ = tables
        assert clustering_utility(train, train) == pytest.approx(0.0,
                                                                 abs=1e-9)

    def test_bounded(self, tables):
        train, _ = tables
        diff = clustering_utility(shuffled_copy(train), train)
        assert 0.0 <= diff <= 1.0


class TestAQPUtility:
    def test_identical_tables_small_diff(self, tables):
        train, _ = tables
        diff = aqp_utility(train, train, n_queries=30, n_sample_draws=2)
        # T' == T answers exactly; Diff equals the 1% sample's own error,
        # which is bounded in practice.
        assert diff >= 0.0

    def test_garbage_is_worse(self, tables):
        train, _ = tables
        good = aqp_utility(train, train, n_queries=30, n_sample_draws=2)
        bad = aqp_utility(shuffled_copy(train), train, n_queries=30,
                          n_sample_draws=2)
        assert bad > good


class TestPrivacyReport:
    def test_self_comparison_is_maximally_risky(self, tables):
        train, _ = tables
        report = privacy_report(train, train, hit_samples=100,
                                dcr_samples=100)
        assert report.hitting_rate == 1.0
        assert report.dcr == 0.0
