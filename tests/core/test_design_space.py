"""Design space configuration and validation."""

import pytest

from repro.core import DesignConfig, iter_design_space, transformation_grid
from repro.errors import ConfigError


class TestDesignConfig:
    def test_defaults_valid(self):
        config = DesignConfig()
        assert config.generator == "mlp"
        assert config.effective_discriminator == "mlp"
        assert config.effective_sampling == "random"
        assert not config.is_conditional

    def test_cnn_defaults_to_cnn_discriminator(self):
        config = DesignConfig(generator="cnn",
                              categorical_encoding="ordinal",
                              numerical_normalization="simple")
        assert config.effective_discriminator == "cnn"
        assert config.matrix_form

    def test_cnn_rejects_onehot(self):
        with pytest.raises(ConfigError):
            DesignConfig(generator="cnn", categorical_encoding="onehot",
                         numerical_normalization="simple")

    def test_cnn_rejects_gmm(self):
        with pytest.raises(ConfigError):
            DesignConfig(generator="cnn", categorical_encoding="ordinal",
                         numerical_normalization="gmm")

    def test_cnn_rejects_conditional(self):
        with pytest.raises(ConfigError):
            DesignConfig(generator="cnn", categorical_encoding="ordinal",
                         numerical_normalization="simple", conditional=True)

    def test_cnn_discriminator_needs_cnn_generator(self):
        with pytest.raises(ConfigError):
            DesignConfig(generator="mlp", discriminator="cnn")

    def test_ctrain_implies_conditional_and_label_aware(self):
        config = DesignConfig(training="ctrain")
        assert config.is_conditional
        assert config.effective_sampling == "label-aware"

    def test_ctrain_with_random_sampling_rejected(self):
        with pytest.raises(ConfigError):
            DesignConfig(training="ctrain", sampling="random")

    def test_unknown_values_rejected(self):
        with pytest.raises(ConfigError):
            DesignConfig(generator="transformer")
        with pytest.raises(ConfigError):
            DesignConfig(training="sgd")
        with pytest.raises(ConfigError):
            DesignConfig(categorical_encoding="hash")

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ConfigError):
            DesignConfig(z_dim=0)

    def test_with_functional_update(self):
        config = DesignConfig()
        updated = config.with_(generator="lstm")
        assert updated.generator == "lstm"
        assert config.generator == "mlp"

    def test_describe_key(self):
        config = DesignConfig(generator="lstm", training="ctrain")
        key = config.describe()
        assert "lstm" in key
        assert "+cond" in key


class TestEnumeration:
    def test_transformation_grid(self):
        grid = transformation_grid()
        assert len(grid) == 4
        assert ("gmm", "onehot") in grid

    def test_iter_design_space_all_valid(self):
        configs = list(iter_design_space())
        assert len(configs) == 9  # 2 generators x 4 transforms + cnn
        for config in configs:
            config.validate()

    def test_iter_design_space_without_cnn(self):
        configs = list(iter_design_space(include_cnn=False))
        assert all(c.generator != "cnn" for c in configs)
