"""Model store: catalogue, LRU eviction, refcounted checkout."""

import threading

import pytest

from repro.serve import ModelNotFound, ModelStore
from repro.serve import store as store_module


class TestCatalogue:
    def test_list_models(self, model_root):
        store = ModelStore(model_root)
        infos = {info.name: info for info in store.list_models()}
        assert set(infos) == {"adult-gan", "adult-vae", "adult-pb",
                              "shop-db"}
        assert infos["adult-gan"].kind == "table"
        assert infos["adult-gan"].method == "gan"
        assert infos["shop-db"].kind == "database"
        assert infos["shop-db"].method == "relational"

    def test_unknown_name(self, model_root):
        store = ModelStore(model_root)
        with pytest.raises(ModelNotFound):
            store.path("no-such-model")

    @pytest.mark.parametrize("name", ["../escape", ".hidden", "a/b", ""])
    def test_hostile_names_rejected(self, model_root, name):
        with pytest.raises(ModelNotFound):
            ModelStore(model_root).path(name)

    def test_empty_root(self, tmp_path):
        assert ModelStore(tmp_path / "nowhere").list_models() == []


class TestCheckout:
    def test_checkout_returns_working_model(self, model_root):
        store = ModelStore(model_root)
        with store.checkout("adult-pb") as handle:
            table = handle.model.sample(12, seed=1)
            assert len(table) == 12
        assert store.cached_models() == ["adult-pb"]

    def test_lru_eviction_order(self, model_root):
        store = ModelStore(model_root, capacity=2)
        for name in ("adult-pb", "adult-vae", "adult-pb", "adult-gan"):
            store.checkout(name).release()
        # vae was least recently used when gan forced the eviction.
        assert store.cached_models() == ["adult-pb", "adult-gan"]

    def test_busy_models_survive_eviction(self, model_root):
        store = ModelStore(model_root, capacity=1)
        held = store.checkout("adult-pb")
        store.checkout("adult-vae").release()
        # The held model was not evictable; the cache exceeded capacity
        # rather than dropping it.
        assert "adult-pb" in store.cached_models()
        held.release()
        store.checkout("adult-gan").release()
        assert len(store.cached_models()) == 1

    def test_concurrent_checkouts_share_one_load(self, model_root,
                                                 monkeypatch):
        store = ModelStore(model_root)
        loads = []
        real_load = store_module.load_model

        def counting_load(path):
            loads.append(path)
            return real_load(path)

        monkeypatch.setattr(store_module, "load_model", counting_load)
        handles = [None] * 4

        def checkout(i):
            handles[i] = store.checkout("adult-pb")

        threads = [threading.Thread(target=checkout, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(loads) == 1
        models = {id(handle.model) for handle in handles}
        assert len(models) == 1
        for handle in handles:
            handle.release()

    def test_failed_load_not_cached(self, tmp_path, model_root):
        store = ModelStore(model_root)
        # Break a copy of the metadata so the load itself fails.
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(model_root / "adult-pb", broken)
        (broken / "arrays.npz").unlink()
        store2 = ModelStore(tmp_path)
        with pytest.raises(Exception):
            store2.checkout("broken")
        assert store2.cached_models() == []

    def test_explicit_evict(self, model_root):
        store = ModelStore(model_root)
        store.checkout("adult-pb").release()
        store.evict("adult-pb")
        assert store.cached_models() == []
