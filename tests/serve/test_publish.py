"""Versioned model store + hot refresh: publish never breaks a request."""

import json

import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import make_synthesizer
from repro.serve import (
    ModelNotFound, ModelStore, SynthesisServer, SynthesisService,
)

from tests.conftest import make_mixed_table


def fitted_pb(seed):
    # Different seeds train on different tables, so the published
    # versions are distinguishable by their samples.
    table = make_mixed_table(n=160, seed=seed)
    return make_synthesizer("privbayes", epsilon=None,
                            seed=0).fit(table)


def tables_equal(a, b):
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


class TestVersionedStore:
    def test_publish_creates_versions_and_active_pointer(self, tmp_path):
        store = ModelStore(tmp_path)
        assert store.publish("pb", fitted_pb(0)) == "v0001"
        assert store.publish("pb", fitted_pb(1)) == "v0002"
        assert store.active_version("pb") == "v0002"
        assert store.versions("pb") == ["v0001", "v0002"]
        assert store.path("pb").name == "v0002"
        assert (tmp_path / "pb" / "ACTIVE").read_text().strip() == "v0002"

    def test_publish_from_saved_directory(self, tmp_path):
        saved = tmp_path / "staging"
        fitted_pb(0).save(saved)
        store = ModelStore(tmp_path / "models")
        assert store.publish("pb", saved) == "v0001"
        assert store.info("pb").method == "privbayes"

    def test_legacy_unversioned_layout_still_resolves(self, tmp_path):
        fitted_pb(0).save(tmp_path / "old-pb")
        store = ModelStore(tmp_path)
        assert store.active_version("old-pb") is None
        assert store.info("old-pb").version is None
        with store.checkout("old-pb") as handle:
            assert len(handle.model.sample(5, seed=1)) == 5

    def test_info_cache_invalidated_by_publish(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("pb", fitted_pb(0))
        assert store.info("pb").version == "v0001"
        store.publish("pb", fitted_pb(1))
        assert store.info("pb").version == "v0002"

    def test_metadata_lists_arrays_without_loading(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("pb", fitted_pb(0))
        manifest = store.metadata("pb")
        assert manifest  # one entry per conditional table
        for entry in manifest.values():
            assert set(entry) == {"shape", "dtype", "nbytes"}

    def test_unknown_model(self, tmp_path):
        with pytest.raises(ModelNotFound):
            ModelStore(tmp_path).versions("missing")


class TestCheckoutAcrossPublish:
    def test_old_handle_survives_a_publish(self, tmp_path):
        store = ModelStore(tmp_path)
        store.publish("pb", fitted_pb(0))
        old = store.checkout("pb")
        expected_old = old.model.sample(20, seed=7)

        store.publish("pb", fitted_pb(1))
        new = store.checkout("pb")
        # The detached old handle keeps serving the old version.
        tables_equal(old.model.sample(20, seed=7), expected_old)
        with pytest.raises(AssertionError):
            tables_equal(new.model.sample(20, seed=7), expected_old)
        old.release()
        new.release()

    def test_release_is_entry_scoped_not_name_scoped(self, tmp_path):
        # Regression: releasing an old-version handle must not
        # decrement the refcount of the *new* version now cached under
        # the same name (which would let LRU evict a busy model).
        store = ModelStore(tmp_path, capacity=1)
        store.publish("pb", fitted_pb(0))
        old = store.checkout("pb")
        store.publish("pb", fitted_pb(1))
        new = store.checkout("pb")
        old.release()
        old.release()  # double release: still must not touch `new`
        entry = store._cache["pb"]
        assert entry.refs == 1
        new.release()
        assert entry.refs == 0


class TestServicePublish:
    def test_publish_swaps_the_serving_pool(self, tmp_path):
        store_root = tmp_path / "models"
        old_model, new_model = fitted_pb(0), fitted_pb(1)
        with SynthesisService(store_root, workers=0) as service:
            service.store.publish("pb", old_model)
            before, _ = service.sample("pb", 15, seed=9)
            tables_equal(before, old_model.sample(15, seed=9))

            assert service.publish("pb", new_model) == "v0002"
            after, _ = service.sample("pb", 15, seed=9)
            tables_equal(after, new_model.sample(15, seed=9))
            assert service.model_info("pb")["version"] == "v0002"

    def test_publish_mid_stream_keeps_the_old_version_bit_identical(
            self, tmp_path):
        # A seeded streaming request that started before the publish
        # must complete on the old version with zero failures and an
        # unchanged byte stream.
        old_model, new_model = fitted_pb(0), fitted_pb(1)
        with SynthesisService(tmp_path / "models", workers=0) as service:
            service.publish("pb", old_model)
            chunks, used_seed = service.sample_iter("pb", 60, batch=20,
                                                    seed=13)
            iterator = iter(chunks)
            received = [next(iterator)]        # request is in flight
            service.publish("pb", new_model)   # hot refresh lands now
            received.extend(iterator)          # old stream drains fine

            expected = old_model.sample(60, batch=20, seed=13)
            got = {name: np.concatenate([c.column(name) for c in received])
                   for name in expected.schema.names}
            for name in expected.schema.names:
                np.testing.assert_array_equal(got[name],
                                              expected.column(name))
            # And the very next request is served by the new version.
            fresh, _ = service.sample("pb", 30, seed=13)
            tables_equal(fresh, new_model.sample(30, seed=13))

    def test_drained_pool_is_reaped(self, tmp_path):
        with SynthesisService(tmp_path / "models", workers=0) as service:
            service.publish("pb", fitted_pb(0))
            service.sample("pb", 5, seed=1)
            service.publish("pb", fitted_pb(1))
            service.sample("pb", 5, seed=1)
            # The retired pool had no in-flight requests left, so a
            # registry sweep closes it.
            assert service.healthz()["draining"] == 0


class TestHttpModelDetail:
    def test_get_model_reports_versions(self, tmp_path):
        with SynthesisService(tmp_path / "models", workers=0) as service:
            service.store.publish("pb", fitted_pb(0))
            with SynthesisServer(service) as server:
                server.start()
                with urllib.request.urlopen(
                        f"{server.url}/models/pb") as response:
                    payload = json.loads(response.read())
                assert payload["version"] == "v0001"
                assert payload["versions"] == ["v0001"]
                assert payload["method"] == "privbayes"
                assert payload["arrays"]
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(f"{server.url}/models/nope")
                assert err.value.code == 404
