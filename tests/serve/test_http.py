"""HTTP front end: routes, formats, determinism, error mapping."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import SynthesisServer, SynthesisService


@pytest.fixture(scope="module")
def server(model_root):
    service = SynthesisService(model_root, workers=0,
                               coalesce_max_rows=64)
    with SynthesisServer(service).start() as srv:
        yield srv
    service.close()


def get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=30) as resp:
        return resp.status, resp.headers, resp.read()


def post(server, path, body):
    request = urllib.request.Request(
        f"{server.url}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=60) as resp:
        return resp.status, resp.headers, resp.read()


def post_error(server, path, body):
    try:
        post(server, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestInfoRoutes:
    def test_healthz(self, server):
        status, _, body = get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"] == 4
        assert "batcher" in payload

    def test_models(self, server):
        status, _, body = get(server, "/models")
        models = {m["name"]: m for m in json.loads(body)["models"]}
        assert status == 200
        assert models["adult-pb"]["kind"] == "table"
        assert models["shop-db"]["kind"] == "database"
        assert models["shop-db"]["method"] == "relational"

    def test_unknown_route(self, server):
        try:
            get(server, "/nope")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:
            raise AssertionError("expected 404")


class TestTableSampling:
    def test_json_seeded_is_deterministic(self, server):
        body = {"n": 25, "seed": 17}
        _, _, first = post(server, "/models/adult-pb/sample", body)
        _, _, second = post(server, "/models/adult-pb/sample", body)
        a, b = json.loads(first), json.loads(second)
        assert a["n"] == 25 and a["seed"] == 17
        assert a["columns"] == b["columns"]
        assert {c["name"] for c in a["schema"]["columns"]} \
            == set(a["columns"])
        assert all(len(v) == 25 for v in a["columns"].values())

    def test_categoricals_decoded_to_labels(self, server):
        _, _, body = post(server, "/models/adult-pb/sample",
                          {"n": 10, "seed": 1})
        payload = json.loads(body)
        assert set(payload["columns"]["job"]) <= {"eng", "doc", "art"}

    def test_unseeded_small_request_coalesced(self, server):
        status, _, body = post(server, "/models/adult-pb/sample",
                               {"n": 10})
        payload = json.loads(body)
        assert status == 200
        assert payload["seed"] is None  # rows came from a shared pass
        assert len(payload["columns"]["age"]) == 10

    def test_unseeded_large_request_reports_assigned_seed(self, server):
        _, _, body = post(server, "/models/adult-pb/sample", {"n": 100})
        payload = json.loads(body)
        assert isinstance(payload["seed"], int)
        # Replaying with the reported seed reproduces the draw.
        _, _, replay = post(server, "/models/adult-pb/sample",
                            {"n": 100, "seed": payload["seed"]})
        assert json.loads(replay)["columns"] == payload["columns"]

    def test_coalesced_csv_omits_seed_header(self, server):
        # Unseeded + small -> coalesced: no standalone stream, so the
        # replay-token header must be absent (not the string "None").
        _, headers, body = post(server, "/models/adult-pb/sample",
                                {"n": 10, "format": "csv"})
        assert headers.get("X-Repro-Seed") is None
        assert len(body.decode().strip().splitlines()) == 11

    def test_csv_format(self, server):
        _, headers, body = post(server, "/models/adult-pb/sample",
                                {"n": 30, "seed": 3, "format": "csv"})
        assert headers["Content-Type"] == "text/csv"
        assert headers["X-Repro-Seed"] == "3"
        lines = body.decode().strip().splitlines()
        assert lines[0] == "age,income,job,city,label"
        assert len(lines) == 31

    def test_csv_streaming_chunked(self, server):
        _, headers, body = post(
            server, "/models/adult-pb/sample",
            {"n": 90, "seed": 4, "batch": 32, "format": "csv",
             "stream": True})
        assert headers["Content-Type"] == "text/csv"
        lines = body.decode().strip().splitlines()
        assert len(lines) == 91
        # The streamed rows equal the one-shot response (same contract).
        _, _, oneshot = post(
            server, "/models/adult-pb/sample",
            {"n": 90, "seed": 4, "batch": 32, "format": "csv"})
        assert body.decode() == oneshot.decode()


class TestDatabaseSampling:
    def test_database_draw(self, server):
        _, _, body = post(server, "/models/shop-db/sample",
                          {"scale": 1.0, "seed": 9})
        payload = json.loads(body)
        assert payload["seed"] == 9
        assert set(payload["tables"]) == {"customers", "orders"}
        orders = payload["tables"]["orders"]
        assert orders["n"] == len(orders["columns"]["order_id"])
        assert payload["foreign_keys"]

    def test_database_deterministic(self, server):
        body = {"scale": 1.0, "seed": 9}
        _, _, first = post(server, "/models/shop-db/sample", body)
        _, _, second = post(server, "/models/shop-db/sample", body)
        assert json.loads(first)["tables"] == json.loads(second)["tables"]


class TestErrorMapping:
    def test_unknown_model_404(self, server):
        code, payload = post_error(server, "/models/ghost/sample",
                                   {"n": 5})
        assert code == 404
        assert payload["error"] == "ModelNotFound"

    def test_missing_n_400(self, server):
        code, payload = post_error(server, "/models/adult-pb/sample", {})
        assert code == 400
        assert "n" in payload["detail"]

    def test_bad_n_400_names_argument(self, server):
        code, payload = post_error(server, "/models/adult-pb/sample",
                                   {"n": "ten", "seed": 1})
        assert code == 400
        assert "n must" in payload["detail"]

    def test_bad_batch_400(self, server):
        code, payload = post_error(server, "/models/adult-pb/sample",
                                   {"n": 10, "seed": 1, "batch": 0})
        assert code == 400
        assert "batch" in payload["detail"]

    def test_bad_format_400(self, server):
        code, _ = post_error(server, "/models/adult-pb/sample",
                             {"n": 10, "format": "parquet"})
        assert code == 400

    def test_stream_requires_csv(self, server):
        code, payload = post_error(
            server, "/models/adult-pb/sample",
            {"n": 10, "stream": True, "format": "json"})
        assert code == 400
        assert "csv" in payload["detail"]

    def test_invalid_body_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/models/adult-pb/sample", data=b"not json{",
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            urllib.request.urlopen(request, timeout=30)
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        else:
            raise AssertionError("expected 400")
