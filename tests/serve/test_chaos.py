"""Chaos suite: deterministic fault injection against the serving stack.

The acceptance contract (tentpole): killing a worker mid-request leaves
the pool open and the recovered output **byte-identical** to plain
``sample(n, batch, seed)`` — the sharded-seed contract turned into a
fault-tolerance guarantee.  Fault plans ride in via ``REPRO_FAULTS``
(inherited by worker processes at spawn), so every failure here is
scripted, not raced.
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    FAULT_EXIT_CODE, CircuitBreaker, CircuitOpen, FaultPlan, PoolClosed,
    RespawnBackoff, ServingError, SynthesisServer, SynthesisService,
    WorkerError, WorkerPool, load_model,
)

TABLE_MODELS = ("adult-gan", "adult-vae", "adult-pb")


def assert_tables_equal(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def set_plan(monkeypatch, *rules, seed=0):
    monkeypatch.setenv("REPRO_FAULTS",
                       json.dumps({"seed": seed, "rules": list(rules)}))


KILL_AFTER_2 = {"on": "chunk", "worker": 0, "after": 2, "action": "kill",
                "incarnations": [0], "times": 1}


class TestPlanParsing:
    def test_round_trip(self):
        plan = FaultPlan.from_spec({"seed": 7, "rules": [KILL_AFTER_2]})
        assert plan.seed == 7 and len(plan.rules) == 1

    def test_unknown_field_rejected(self):
        with pytest.raises(ServingError, match="unknown field"):
            FaultPlan.from_spec({"rules": [{"on": "chunk", "typo": 1,
                                            "action": "kill"}]})

    def test_bad_action_rejected(self):
        with pytest.raises(ServingError, match="action"):
            FaultPlan.from_spec({"rules": [{"on": "chunk",
                                            "action": "explode"}]})

    def test_probability_coin_is_deterministic(self):
        def fires(plan):
            hits = []
            for i in range(64):
                hit = plan.rules[0].matches(plan.seed, "chunk", 0, 0,
                                            i, i, None)
                hits.append(hit)
            return hits

        spec = {"seed": 3, "rules": [{"on": "chunk", "action": "delay",
                                      "probability": 0.25}]}
        first = fires(FaultPlan.from_spec(spec))
        assert first == fires(FaultPlan.from_spec(spec))
        assert 0 < sum(first) < 64


class TestKillMidRequest:
    """Kill one worker mid-request: bit-identical recovery, pool open."""

    @pytest.mark.parametrize("model", TABLE_MODELS)
    def test_bit_identity_after_kill(self, model_root, monkeypatch,
                                     model):
        path = model_root / model
        reference = load_model(path).sample(96, batch=8, seed=5)
        set_plan(monkeypatch, KILL_AFTER_2)
        with WorkerPool(path, workers=1, request_timeout=60.0) as pool:
            out = pool.sample(96, batch=8, seed=5)
            assert_tables_equal(out, reference)
            status = pool.status()
            assert status["restarts"] >= 1
            assert status["slots"][0]["last_exit"] == FAULT_EXIT_CODE
            assert not pool.crashed and not pool.closed
            # The pool keeps serving afterwards, still bit-identically.
            follow_up = load_model(path).sample(40, batch=8, seed=9)
            assert_tables_equal(pool.sample(40, batch=8, seed=9),
                                follow_up)

    def test_surviving_worker_absorbs_the_chunks(self, model_root,
                                                 monkeypatch):
        """With 2 workers, the victim's chunks requeue to the survivor
        (no respawn wait on the request's critical path needed)."""
        path = model_root / "adult-pb"
        reference = load_model(path).sample(96, batch=8, seed=5)
        set_plan(monkeypatch, KILL_AFTER_2)
        with WorkerPool(path, workers=2, request_timeout=60.0) as pool:
            assert_tables_equal(pool.sample(96, batch=8, seed=5),
                                reference)
            assert pool.status()["chunk_retries"] >= 1
            assert not pool.crashed

    def test_streaming_survives_a_kill(self, model_root, monkeypatch):
        path = model_root / "adult-pb"
        reference = load_model(path).sample(96, batch=8, seed=5)
        set_plan(monkeypatch, KILL_AFTER_2)
        with WorkerPool(path, workers=1, request_timeout=60.0) as pool:
            chunks = list(pool.sample_iter(96, batch=8, seed=5))
            out = chunks[0]
            for chunk in chunks[1:]:
                out = out.concat_rows(chunk)
            assert_tables_equal(out, reference)

    def test_database_draw_survives_a_kill(self, model_root,
                                           monkeypatch):
        """A whole-database draw (chunk index -1) is requeued whole."""
        path = model_root / "shop-db"
        reference = load_model(path).sample(1.0, seed=7)
        set_plan(monkeypatch, {"on": "chunk", "chunk_index": -1,
                               "action": "kill", "incarnations": [0],
                               "times": 1})
        with WorkerPool(path, workers=1, request_timeout=60.0) as pool:
            served = pool.sample_database(1.0, seed=7)
            assert set(served.table_names) == set(reference.table_names)
            for name in reference.table_names:
                assert_tables_equal(served[name], reference[name])
            assert pool.status()["restarts"] >= 1


class TestTracedKill:
    """Trace stitching survives a mid-request worker kill."""

    def test_trace_covers_every_chunk_across_a_kill(self, model_root,
                                                    monkeypatch):
        """The stitched trace reconstructs one worker span per chunk
        with or without an injected kill; the killed chunk reappears as
        a tagged retry span, never as a gap, and the table stays
        bit-identical."""
        from repro.obs.trace import Trace

        path = model_root / "adult-pb"
        n, batch, seed = 96, 8, 5
        chunk_indices = set(range(n // batch))

        clean_trace = Trace("clean")
        with WorkerPool(path, workers=2, request_timeout=60.0) as pool:
            clean = pool.sample(n, batch=batch, seed=seed,
                                trace=clean_trace)
        clean_coverage = clean_trace.chunk_coverage()
        assert set(clean_coverage) == chunk_indices
        assert all(count == 1 for count in clean_coverage.values())

        set_plan(monkeypatch, KILL_AFTER_2)
        killed_trace = Trace("killed")
        with WorkerPool(path, workers=2, request_timeout=60.0) as pool:
            killed = pool.sample(n, batch=batch, seed=seed,
                                 trace=killed_trace)
            assert pool.status()["chunk_retries"] >= 1

        assert_tables_equal(killed, clean)
        killed_coverage = killed_trace.chunk_coverage()
        # Same chunk set as the clean run — the kill never leaves a
        # hole.  The killed attempt dies before its span ships, so the
        # re-executed chunk arrives as a tagged retry span instead.
        assert set(killed_coverage) == chunk_indices
        retry_spans = [s for s in killed_trace.spans()
                       if s.tags.get("retry")]
        assert retry_spans
        assert all("#r" in s.span_id for s in retry_spans)
        assert {s.tags["chunk"] for s in retry_spans} <= chunk_indices
        # Every chunk span closed and carries its executing worker.
        for span in killed_trace.spans():
            if "chunk" not in span.tags:
                continue
            assert span.duration() >= 0.0
            assert span.tags.get("worker") in (0, 1)

    def test_trace_spans_survive_inline_drain(self, model_root,
                                              monkeypatch):
        """When the last slot retires and the parent drains inline, the
        inline chunks still land in the trace (tagged as inline)."""
        from repro.obs.trace import Trace

        path = model_root / "adult-pb"
        set_plan(monkeypatch, KILL_AFTER_2)
        trace = Trace("inline")
        pool = WorkerPool(path, workers=1, request_timeout=60.0,
                          respawn=False, inline_fallback=True)
        try:
            pool.sample(96, batch=8, seed=5, trace=trace)
            assert pool.status()["inline_recoveries"] >= 1
        finally:
            pool.close()
        coverage = trace.chunk_coverage()
        assert set(coverage) == set(range(12))


class TestPoisonChunk:
    def test_poison_chunk_fails_one_request_not_the_pool(
            self, model_root, monkeypatch):
        """A chunk that kills every worker that touches it exhausts its
        retry budget and fails with WorkerError; the pool survives and
        requests that avoid the chunk still work."""
        path = model_root / "adult-pb"
        set_plan(monkeypatch, {"on": "chunk", "chunk_index": 3,
                               "action": "kill"})
        with WorkerPool(path, workers=1, request_timeout=60.0,
                        chunk_retry_budget=1) as pool:
            with pytest.raises(WorkerError, match="retry budget"):
                pool.sample(96, batch=8, seed=5)  # 12 chunks, hits 3
            assert not pool.closed and not pool.crashed
            # Chunks 0-1 only: the poison index is never touched.
            reference = load_model(path).sample(16, batch=8, seed=2)
            assert_tables_equal(pool.sample(16, batch=8, seed=2),
                                reference)

    def test_injected_exception_travels_worker_error_path(
            self, model_root, monkeypatch):
        set_plan(monkeypatch, {"on": "chunk", "chunk_index": 0,
                               "action": "raise",
                               "message": "injected-boom", "times": 1})
        with WorkerPool(model_root / "adult-pb", workers=1,
                        request_timeout=60.0) as pool:
            with pytest.raises(WorkerError, match="injected-boom"):
                pool.sample(32, batch=8, seed=5)
            # The worker survives a raised (non-kill) fault entirely.
            assert pool.status()["restarts"] == 0
            assert pool.sample(16, batch=8, seed=2) is not None


class TestStaleWorkShedding:
    def test_failed_request_chunks_are_skipped(self, model_root,
                                               monkeypatch):
        """After one worker errors a request, the other worker's queued
        chunks for it are dropped at dispatch, not computed."""
        path = model_root / "adult-pb"
        set_plan(monkeypatch,
                 {"on": "chunk", "chunk_index": 0, "action": "raise",
                  "times": 1},
                 {"on": "task", "worker": 1, "action": "delay",
                  "seconds": 0.3})
        with WorkerPool(path, workers=2, request_timeout=60.0) as pool:
            with pytest.raises(WorkerError):
                list(pool.sample_iter(160, batch=8, seed=5))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if pool.status()["stale_dropped"] >= 1:
                    break
                time.sleep(0.05)
            assert pool.status()["stale_dropped"] >= 1


class TestInlineTakeover:
    def test_all_slots_retired_drains_inline_bit_identically(
            self, model_root, monkeypatch):
        """respawn=False + inline_fallback: a mid-request kill retires
        the only slot, the parent finishes the request inline with the
        same bytes, and the crashed pool rejects new work."""
        path = model_root / "adult-pb"
        reference = load_model(path).sample(96, batch=8, seed=5)
        set_plan(monkeypatch, KILL_AFTER_2)
        pool = WorkerPool(path, workers=1, request_timeout=60.0,
                          respawn=False, inline_fallback=True)
        try:
            assert_tables_equal(pool.sample(96, batch=8, seed=5),
                                reference)
            assert pool.crashed
            assert pool.status()["inline_recoveries"] >= 1
            with pytest.raises(PoolClosed):
                pool.sample(10, seed=1)
        finally:
            pool.close()


class TestRespawnBackoff:
    def test_delay_doubles_to_cap(self):
        backoff = RespawnBackoff(base=0.25, cap=15.0)
        delays = [backoff.delay(i) for i in range(8)]
        assert delays[:5] == [0.25, 0.5, 1.0, 2.0, 4.0]
        assert delays[-1] == 15.0

    def test_validation(self):
        with pytest.raises(ValueError, match="base"):
            RespawnBackoff(base=0.0)
        with pytest.raises(ValueError, match="cap"):
            RespawnBackoff(base=1.0, cap=0.5)
        with pytest.raises(ValueError, match="failures"):
            RespawnBackoff().delay(-1)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_open_half_open_close_lifecycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.allow()          # half-open probe admitted
        assert breaker.state == "half_open"
        assert not breaker.allow()      # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_doubles_timeout_capped(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=2.0,
                                 max_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        expected = [4.0, 5.0, 5.0]      # doubled, then capped
        for timeout in expected:
            clock.advance(breaker.retry_after())
            assert breaker.allow()
            breaker.record_failure()    # failed probe
            assert breaker.state == "open"
            assert breaker.retry_after() == pytest.approx(timeout)

    def test_lost_probe_is_replaced(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=2.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()          # probe #1 ... never reports
        clock.advance(2.0)
        assert breaker.allow()          # replaced after a full window

    def test_status_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        status = breaker.status()
        assert status["state"] == "open"
        assert status["opens"] == 1
        assert status["retry_after"] > 0


BOOT_KILL = {"on": "boot", "action": "kill"}


class TestServiceCircuit:
    """Circuit breaker at the service layer, over real boot failures."""

    def _service(self, model_root, clock, **kwargs):
        return SynthesisService(
            model_root, workers=1, request_timeout=30.0,
            circuit_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=5.0, clock=clock),
            **kwargs)

    def test_open_rejects_fast_then_heals_via_probe(
            self, model_root, monkeypatch):
        clock = FakeClock()
        set_plan(monkeypatch, BOOT_KILL)
        with self._service(model_root, clock) as service:
            for _ in range(2):
                with pytest.raises(WorkerError):
                    service.sample("adult-pb", 16, seed=1)
            # Circuit open: fails fast without attempting a boot.
            start = time.monotonic()
            with pytest.raises(CircuitOpen) as info:
                service.sample("adult-pb", 16, seed=1)
            assert time.monotonic() - start < 1.0
            assert info.value.retry_after > 0
            assert service.healthz()["circuits"]["adult-pb"]["state"] \
                == "open"
            # Heal the model and let the open window lapse: the next
            # request is the half-open probe, boots a pool, and closes
            # the circuit.
            monkeypatch.delenv("REPRO_FAULTS")
            clock.advance(5.0)
            reference = load_model(model_root / "adult-pb").sample(
                16, batch=8, seed=1)
            table, _ = service.sample("adult-pb", 16, batch=8, seed=1)
            assert_tables_equal(table, reference)
            assert service.healthz()["circuits"]["adult-pb"]["state"] \
                == "closed"

    def test_degraded_inline_serves_while_open(self, model_root,
                                               monkeypatch):
        clock = FakeClock()
        set_plan(monkeypatch, BOOT_KILL)
        reference = load_model(model_root / "adult-pb").sample(
            48, batch=8, seed=3)
        with self._service(model_root, clock,
                           degraded="inline") as service:
            for _ in range(2):
                with pytest.raises(WorkerError):
                    service.sample("adult-pb", 16, seed=1)
            # Open circuit + degraded mode: served inline, bit-identical
            # (the sharded-seed contract holds at workers=0).
            table, _ = service.sample("adult-pb", 48, batch=8, seed=3)
            assert_tables_equal(table, reference)
            health = service.healthz()
            assert health["degraded"] == ["adult-pb"]
            assert health["circuits"]["adult-pb"]["state"] == "open"
            # Heal: the probe boots a worker pool, the circuit closes,
            # and the degraded fallback is retired.
            monkeypatch.delenv("REPRO_FAULTS")
            clock.advance(5.0)
            table, _ = service.sample("adult-pb", 48, batch=8, seed=3)
            assert_tables_equal(table, reference)
            health = service.healthz()
            assert health["circuits"]["adult-pb"]["state"] == "closed"
            assert health["degraded"] == []

    def test_crashed_pool_is_replaced(self, model_root, monkeypatch):
        """A pool whose every slot retires (crash loop) still finishes
        the in-flight request inline, then is swapped for a fresh pool
        on the next request."""
        clock = FakeClock()
        reference = load_model(model_root / "adult-pb").sample(
            96, batch=8, seed=5)
        # Incarnation 0 dies mid-request; every respawn (1..3) dies at
        # boot, so the slot retires after max_boot_failures and the
        # pool crashes — but a fresh pool's incarnation 0 is clean.
        set_plan(monkeypatch, KILL_AFTER_2,
                 {"on": "boot", "action": "kill",
                  "incarnations": [1, 2, 3]})
        with self._service(model_root, clock) as service:
            table, _ = service.sample("adult-pb", 96, batch=8, seed=5)
            assert_tables_equal(table, reference)  # inline drain
            health = service.healthz()
            assert health["pools"]["adult-pb"]["crashed"] is True
            assert health["pools"]["adult-pb"]["inline_recoveries"] >= 1
            # Next request detects the crash, retires the pool, and
            # boots a replacement whose workers survive (plans are
            # re-armed per process, so the fault env must be cleared).
            monkeypatch.delenv("REPRO_FAULTS")
            table, _ = service.sample("adult-pb", 96, batch=8, seed=5)
            assert_tables_equal(table, reference)
            assert service.healthz()["pools"]["adult-pb"]["crashed"] \
                is False


class TestCircuitOverHTTP:
    def test_503_retry_after_and_recovery(self, model_root,
                                          monkeypatch):
        clock = FakeClock()
        set_plan(monkeypatch, BOOT_KILL)
        service = SynthesisService(
            model_root, workers=1, request_timeout=30.0,
            circuit_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=5.0, clock=clock))
        with SynthesisServer(service).start() as server:
            def sample_status(body):
                request = urllib.request.Request(
                    f"{server.url}/models/adult-pb/sample",
                    data=json.dumps(body).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST")
                try:
                    with urllib.request.urlopen(request,
                                                timeout=60) as resp:
                        return (resp.status, resp.headers,
                                json.loads(resp.read()))
                except urllib.error.HTTPError as exc:
                    return exc.code, exc.headers, json.loads(exc.read())

            for _ in range(2):
                status, _, payload = sample_status({"n": 16, "seed": 1})
                assert status == 500
                assert payload["error"] == "WorkerError"
            status, headers, payload = sample_status({"n": 16,
                                                      "seed": 1})
            assert status == 503
            assert payload["error"] == "CircuitOpen"
            assert int(headers["Retry-After"]) >= 5
            # /healthz exposes the open circuit.
            with urllib.request.urlopen(f"{server.url}/healthz",
                                        timeout=30) as resp:
                health = json.loads(resp.read())
            assert health["circuits"]["adult-pb"]["state"] == "open"
            # Heal + half-open probe over HTTP.
            monkeypatch.delenv("REPRO_FAULTS")
            clock.advance(5.0)
            status, _, payload = sample_status({"n": 16, "seed": 1})
            assert status == 200
            assert payload["seed"] == 1
        service.close()
