"""Micro-batching: coalescing, splitting, backpressure, deadlines."""

import threading
import time

import numpy as np
import pytest

from repro.datasets.schema import Attribute, NUMERICAL, Schema, Table
from repro.serve import BackpressureError, MicroBatcher, RequestTimeout
from repro.serve.batching import slice_rows

SCHEMA = Schema((Attribute("v", NUMERICAL),))


def make_sampler(log, block=None):
    """A fake pool: returns rows numbered by call so splits are
    traceable back to the pass that produced them."""

    def sampler(model, n, seed):
        if block is not None:
            block.wait()
        log.append((model, n, seed))
        call = len(log)
        return Table(SCHEMA, {"v": np.arange(n) + 1000.0 * call})

    return sampler


def test_slice_rows():
    table = Table(SCHEMA, {"v": np.arange(10.0)})
    part = slice_rows(table, 3, 7)
    np.testing.assert_array_equal(part.column("v"), [3.0, 4.0, 5.0, 6.0])


def test_concurrent_unseeded_requests_coalesce():
    log = []
    with MicroBatcher(make_sampler(log), max_delay=0.08) as batcher:
        results = {}

        def submit(key, n):
            results[key] = batcher.submit("m", n)

        threads = [threading.Thread(target=submit, args=(i, 10 + i))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One generator pass served all three requests...
        assert len(log) == 1
        assert log[0][1] == 10 + 11 + 12
        # ...and each got exactly its own row count back.
        assert sorted(len(results[i].column("v")) for i in range(3)) \
            == [10, 11, 12]
        assert batcher.stats["coalesced_batches"] == 1
        assert batcher.stats["coalesced_requests"] == 3


def test_split_preserves_request_boundaries():
    log = []
    with MicroBatcher(make_sampler(log), max_delay=0.08) as batcher:
        results = []
        barrier = threading.Barrier(2)

        def submit(n):
            barrier.wait()
            results.append(batcher.submit("m", n))

        threads = [threading.Thread(target=submit, args=(n,))
                   for n in (5, 7)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if len(log) == 1:  # both coalesced into one pass of 12 rows
            total = np.concatenate([t.column("v") for t in results])
            assert sorted(total % 1000) == sorted(range(12))


def test_seeded_requests_never_coalesce():
    log = []
    with MicroBatcher(make_sampler(log), max_delay=0.08) as batcher:
        done = []

        def submit(seed):
            done.append(batcher.submit("m", 8, seed=seed))

        threads = [threading.Thread(target=submit, args=(seed,))
                   for seed in (11, 22)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 2
        assert sorted(call[2] for call in log) == [11, 22]


def test_different_models_not_mixed():
    log = []
    with MicroBatcher(make_sampler(log), max_delay=0.08) as batcher:
        results = {}

        def submit(model):
            results[model] = batcher.submit(model, 6)

        threads = [threading.Thread(target=submit, args=(m,))
                   for m in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 2
        assert sorted(call[0] for call in log) == ["a", "b"]


def _wait_until(predicate, timeout=2.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.005)
    return True


def test_backpressure_rejects_immediately():
    release = threading.Event()
    log = []
    # One execution slot: request A occupies it, the scheduler stalls
    # holding B (waiting for the slot), C fills the bounded queue —
    # staged with explicit waits so every request deterministically
    # reaches its position before the next is submitted.
    batcher = MicroBatcher(make_sampler(log, block=release),
                           max_queue=1, max_delay=0.0,
                           executor_threads=1)
    workers = []

    def submit_async(seed):
        worker = threading.Thread(
            target=lambda: batcher.submit("m", 4, seed=seed,
                                          timeout=10.0))
        worker.start()
        workers.append(worker)

    try:
        submit_async(1)  # A: popped and executing (blocked in sampler)
        assert _wait_until(lambda: batcher._running == 1
                           and not batcher._queue)
        submit_async(2)  # B: popped, scheduler stuck in the slot-wait
        assert _wait_until(lambda: batcher.stats["submitted"] == 2
                           and not batcher._queue)
        submit_async(3)  # C: stays queued — the queue is now at bound
        assert _wait_until(lambda: len(batcher._queue) == 1)
        start = time.monotonic()
        with pytest.raises(BackpressureError, match="queue is full"):
            batcher.submit("m", 4, timeout=10.0)
        assert time.monotonic() - start < 1.0  # immediate, not after wait
        assert batcher.stats["rejected"] == 1
    finally:
        release.set()
        for worker in workers:
            worker.join(timeout=10.0)
        batcher.close()


def test_slow_model_does_not_block_other_models():
    """A long pass for one model must not head-of-line block another
    model's requests (passes run on the executor, not the scheduler)."""
    release = threading.Event()
    log = []

    def sampler(model, n, seed):
        if model == "slow":
            release.wait()
        log.append((model, n, seed))
        return Table(SCHEMA, {"v": np.arange(n) * 1.0})

    batcher = MicroBatcher(sampler, max_delay=0.0, executor_threads=2)
    try:
        slow = threading.Thread(
            target=lambda: batcher.submit("slow", 4, seed=1, timeout=10.0))
        slow.start()
        time.sleep(0.05)  # let the slow pass occupy its executor slot
        start = time.monotonic()
        table = batcher.submit("fast", 4, timeout=5.0)
        assert time.monotonic() - start < 2.0
        assert len(table.column("v")) == 4
    finally:
        release.set()
        slow.join(timeout=5.0)
        batcher.close()


def test_deadline_raises_timeout():
    release = threading.Event()
    log = []
    batcher = MicroBatcher(make_sampler(log, block=release),
                           max_delay=0.0)
    try:
        with pytest.raises(RequestTimeout, match="deadline"):
            batcher.submit("m", 4, seed=1, timeout=0.05)
        assert batcher.stats["timeouts"] == 1
    finally:
        release.set()
        batcher.close()


def test_expired_queued_requests_are_dropped():
    release = threading.Event()
    log = []
    batcher = MicroBatcher(make_sampler(log, block=release),
                           max_delay=0.0)
    errors = []

    def expiring():
        try:
            batcher.submit("m", 4, seed=2, timeout=0.05)
        except RequestTimeout as exc:
            errors.append(exc)

    try:
        blocker = threading.Thread(
            target=lambda: batcher.submit("m", 4, seed=1, timeout=5.0))
        blocker.start()
        time.sleep(0.02)
        expirer = threading.Thread(target=expiring)
        expirer.start()
        expirer.join(timeout=2.0)
        assert errors  # the queued request timed out...
        release.set()
        blocker.join(timeout=5.0)
        time.sleep(0.05)
        # ...and was not executed after expiring.
        assert len(log) <= 2
    finally:
        release.set()
        batcher.close()


def test_close_fails_pending():
    from repro.serve import PoolClosed

    release = threading.Event()
    batcher = MicroBatcher(make_sampler([], block=release), max_delay=0.0)
    with pytest.raises(PoolClosed):
        batcher.close()
        batcher.submit("m", 4)
    release.set()


def test_validation_names_argument():
    batcher = MicroBatcher(make_sampler([]))
    try:
        with pytest.raises(ValueError, match="n must"):
            batcher.submit("m", 0)
    finally:
        batcher.close()
