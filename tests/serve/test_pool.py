"""Worker pool: concurrent sampling determinism + failure modes.

The acceptance contract (satellite): the same ``(model, n, seed)``
through 1 worker, 4 workers, and plain single-process ``sample()``
produces identical tables — for every method family and for a
relational database.
"""

import numpy as np
import pytest

from repro.serve import ServingError, WorkerError, WorkerPool, load_model

TABLE_MODELS = ("adult-gan", "adult-vae", "adult-pb")


def assert_tables_equal(a, b):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def assert_databases_equal(a, b):
    assert set(a.table_names) == set(b.table_names)
    for name in a.table_names:
        assert_tables_equal(a[name], b[name])


@pytest.mark.parametrize("model", TABLE_MODELS)
def test_worker_counts_bit_identical(model_root, model):
    """1 worker == 4 workers == plain sample(), bit for bit."""
    path = model_root / model
    plain = load_model(path).sample(90, batch=16, seed=5)
    for workers in (1, 4):
        with WorkerPool(path, workers=workers) as pool:
            assert_tables_equal(pool.sample(90, batch=16, seed=5), plain)


def test_inline_pool_bit_identical(model_root):
    path = model_root / "adult-pb"
    plain = load_model(path).sample(70, batch=32, seed=8)
    with WorkerPool(path, workers=0) as pool:
        assert_tables_equal(pool.sample(70, batch=32, seed=8), plain)


def test_default_batch_matches_local_default(model_root):
    """No explicit batch: the pool uses the model's own default chunk
    size, so the unbatched call is covered by the contract too."""
    path = model_root / "adult-pb"
    plain = load_model(path).sample(50, seed=3)
    with WorkerPool(path, workers=2) as pool:
        assert pool.default_batch == load_model(path).default_sample_batch
        assert_tables_equal(pool.sample(50, seed=3), plain)


def test_database_pool_bit_identical(model_root):
    """Database serving: a pooled draw equals the local draw."""
    path = model_root / "shop-db"
    plain = load_model(path).sample(1.0, seed=7)
    for workers in (0, 2):
        with WorkerPool(path, workers=workers) as pool:
            served = pool.sample_database(1.0, seed=7)
            assert_databases_equal(served, plain)
            assert all(v == 0 for v in served.check_integrity().values())


def test_sample_iter_streams_in_order(model_root):
    path = model_root / "adult-pb"
    plain = load_model(path).sample(64, batch=16, seed=2)
    with WorkerPool(path, workers=2) as pool:
        chunks = list(pool.sample_iter(64, batch=16, seed=2))
        assert [len(c) for c in chunks] == [16, 16, 16, 16]
        out = chunks[0]
        for chunk in chunks[1:]:
            out = out.concat_rows(chunk)
        assert_tables_equal(out, plain)


def test_streaming_flow_control_bounds_buffering(model_root):
    """A slow sample_iter consumer must not let workers race ahead and
    buffer the whole table in the parent: dispatch is windowed."""
    import time as _time

    path = model_root / "adult-pb"
    with WorkerPool(path, workers=1) as pool:
        stream = pool.sample_iter(160, batch=8, seed=2)  # 20 chunks
        chunks = [next(stream)]
        _time.sleep(0.5)  # plenty of time to race ahead, were it allowed
        with pool._lock:
            pending = list(pool._pending.values())
        assert len(pending) == 1
        # window = max(2*workers, 4) = 4 outstanding chunks, not 19.
        assert len(pending[0].results) <= 6
        chunks.extend(stream)
        assert sum(len(c) for c in chunks) == 160
        plain = load_model(path).sample(160, batch=8, seed=2)
        out = chunks[0]
        for chunk in chunks[1:]:
            out = out.concat_rows(chunk)
        assert_tables_equal(out, plain)


def test_concurrent_requests_one_pool(model_root):
    """Several threads hammering one pool each get their exact table."""
    import threading

    path = model_root / "adult-pb"
    expected = {seed: load_model(path).sample(40, batch=8, seed=seed)
                for seed in (1, 2, 3, 4)}
    results = {}
    with WorkerPool(path, workers=2) as pool:
        def run(seed):
            results[seed] = pool.sample(40, batch=8, seed=seed)

        threads = [threading.Thread(target=run, args=(seed,))
                   for seed in expected]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    for seed, table in expected.items():
        assert_tables_equal(results[seed], table)


class TestValidationAndErrors:
    def test_bad_counts_name_the_argument(self, model_root):
        with WorkerPool(model_root / "adult-pb", workers=0) as pool:
            with pytest.raises(ValueError, match="n must"):
                pool.sample(0)
            with pytest.raises(ValueError, match="batch"):
                pool.sample(10, batch=0)
            with pytest.raises(ValueError, match="batch"):
                pool.sample(10, batch=2.5)

    def test_kind_mismatch(self, model_root):
        with WorkerPool(model_root / "adult-pb", workers=0) as pool:
            with pytest.raises(ServingError, match="single table"):
                pool.sample_database(1.0)
        with WorkerPool(model_root / "shop-db", workers=0) as pool:
            with pytest.raises(ServingError, match="database"):
                pool.sample(10)

    def test_missing_model_dir(self, tmp_path):
        with pytest.raises(ServingError, match="no saved synthesizer"):
            WorkerPool(tmp_path / "missing", workers=0)

    def test_boot_failure_surfaces(self, tmp_path, model_root):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(model_root / "adult-pb", broken)
        (broken / "arrays.npz").unlink()
        with pytest.raises(WorkerError, match="failed to start"):
            WorkerPool(broken, workers=1, start_timeout=30.0)

    def test_pending_releases_chunks_on_handover(self):
        """Streamed chunks leave the pending buffer as they are
        yielded, so a long stream never re-materializes in the parent."""
        from repro.serve.pool import _Pending

        pending = _Pending(expected=2, kind="chunks", spec=(16, 8, 0))
        pending.deliver(0, "chunk-0")
        assert pending.wait_index(0, None) == "chunk-0"
        assert 0 not in pending.results

    def test_worker_death_recovers_bit_identically(self, model_root):
        """A worker killed while idle is respawned and the queued
        request is recovered bit-identically (self-healing default)."""
        reference = load_model(model_root / "adult-pb").sample(
            50, batch=8, seed=1)
        pool = WorkerPool(model_root / "adult-pb", workers=1,
                          request_timeout=60.0)
        try:
            for process in pool._processes:
                process.terminate()
            out = pool.sample(50, batch=8, seed=1)
            for name in reference.schema.names:
                np.testing.assert_array_equal(out.columns[name],
                                              reference.columns[name])
            status = pool.status()
            assert status["restarts"] >= 1
            assert not pool.crashed and not pool.closed
        finally:
            pool.close()

    def test_worker_death_without_respawn_crashes_fast(self, model_root):
        """With respawn and inline fallback disabled, supervision is
        crash-fail: a killed worker fails requests promptly (not at the
        request timeout) and marks the pool crashed."""
        import time as _time

        pool = WorkerPool(model_root / "adult-pb", workers=1,
                          request_timeout=60.0, respawn=False,
                          inline_fallback=False)
        try:
            for process in pool._processes:
                process.terminate()
            start = _time.monotonic()
            with pytest.raises(ServingError):
                pool.sample(50, batch=8, seed=1)
            assert _time.monotonic() - start < 10.0
            assert pool.crashed
            from repro.serve import PoolClosed

            with pytest.raises(PoolClosed):
                pool.sample(10, seed=1)
        finally:
            pool.close()

    def test_closed_pool_rejects(self, model_root):
        pool = WorkerPool(model_root / "adult-pb", workers=1)
        pool.close()
        from repro.serve import PoolClosed

        with pytest.raises(PoolClosed):
            pool.sample(10, seed=1)


class TestEventRing:
    """Supervision event ring: configurable size, obs.clock stamps."""

    def test_ring_capacity_is_configurable(self, model_root):
        pool = WorkerPool(model_root / "adult-pb", workers=0,
                          inline_fallback=True, event_ring=4)
        try:
            for i in range(10):
                pool._record_event("probe", index=i)
            events = pool.status()["events"]
            assert len(events) == 4
            assert [e["index"] for e in events] == [6, 7, 8, 9]
        finally:
            pool.close()

    def test_ring_size_validated(self, model_root):
        with pytest.raises(ValueError, match="event_ring"):
            WorkerPool(model_root / "adult-pb", workers=0,
                       inline_fallback=True, event_ring=0)

    def test_events_are_stamped_via_obs_clock(self, model_root):
        from repro.obs.clock import ManualClock, use_clock

        pool = WorkerPool(model_root / "adult-pb", workers=0,
                          inline_fallback=True)
        try:
            with use_clock(ManualClock(start=12.0, epoch=2_000.0)):
                pool._record_event("probe")
            (event,) = [e for e in pool.status()["events"]
                        if e["event"] == "probe"]
            assert event["at"] == 12.0
            assert event["wall"] == 2_000.0
        finally:
            pool.close()
