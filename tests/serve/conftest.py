"""Shared fixtures: a session-scoped store of tiny saved models."""

import pytest

from repro.api import make_synthesizer
from repro.datasets import simulated
from repro.relational.synthesizer import DatabaseSynthesizer

from tests.conftest import make_mixed_table

TINY_FIT = dict(epochs=1, iterations_per_epoch=3)


@pytest.fixture(scope="session")
def model_root(tmp_path_factory):
    """A model-store root with one model per family plus a database."""
    root = tmp_path_factory.mktemp("models")
    table = make_mixed_table(n=160, seed=3)
    make_synthesizer("gan", seed=0, **TINY_FIT).fit(table).save(
        root / "adult-gan")
    make_synthesizer("vae", seed=0, **TINY_FIT).fit(table).save(
        root / "adult-vae")
    make_synthesizer("privbayes", epsilon=None, seed=0).fit(table).save(
        root / "adult-pb")
    database = simulated.sdata_relational(n_customers=50, seed=0)
    DatabaseSynthesizer(method="privbayes",
                        method_kwargs={"epsilon": None},
                        seed=0).fit(database).save(root / "shop-db")
    return root
