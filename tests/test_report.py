"""Report formatting."""

from repro.report import format_cell, format_series, format_table


def test_format_cell_precision():
    assert format_cell(0.123456, precision=3) == "0.123"
    assert format_cell("abc") == "abc"
    assert format_cell(7) == "7"


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    header, rule, row1, row2 = lines
    assert header.index("value") == row1.index("1.000")


def test_format_table_title():
    text = format_table(["x"], [[1]], title="Table 1")
    assert text.startswith("Table 1")


def test_format_series_columns():
    text = format_series({"a": [0.1, 0.2], "b": [0.3]}, x_label="epoch")
    lines = text.splitlines()
    assert "epoch" in lines[0]
    assert "a" in lines[0]
    # Short series pad with blanks rather than crash.
    assert len(lines) == 4
